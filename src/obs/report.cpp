#include "obs/report.hpp"

#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace amret::obs {

namespace {

/// Minimal JSON value model — just enough for trace-event files. Numbers
/// are doubles; objects/arrays own their children.
struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
        Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    [[nodiscard]] const JsonValue* find(const std::string& key) const {
        for (const auto& [k, v] : object)
            if (k == key) return &v;
        return nullptr;
    }
};

/// Recursive-descent parser. Tolerant only in what it accepts from valid
/// JSON; any malformed input fails with a position-stamped message.
class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool parse(JsonValue& out, std::string& error) {
        if (!value(out, error)) return false;
        skip_ws();
        if (pos_ != text_.size()) {
            error = fail("trailing characters after JSON value");
            return false;
        }
        return true;
    }

private:
    std::string fail(const std::string& what) const {
        return what + " at offset " + std::to_string(pos_);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
            ++pos_;
    }

    bool literal(const char* word, std::string& error) {
        for (const char* p = word; *p != '\0'; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p) {
                error = fail("invalid literal");
                return false;
            }
        }
        return true;
    }

    bool string_value(std::string& out, std::string& error) {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) break;
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        error = fail("truncated \\u escape");
                        return false;
                    }
                    const unsigned long code =
                        std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
                    pos_ += 4;
                    // Non-ASCII escapes are preserved as '?' — span names in
                    // our traces are ASCII identifiers.
                    out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
                    break;
                }
                default: error = fail("unknown escape"); return false;
            }
        }
        error = fail("unterminated string");
        return false;
    }

    bool value(JsonValue& out, std::string& error) {
        skip_ws();
        if (pos_ >= text_.size()) {
            error = fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') return object_value(out, error);
        if (c == '[') return array_value(out, error);
        if (c == '"') {
            out.kind = JsonValue::Kind::kString;
            return string_value(out.string, error);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
            return literal("true", error);
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = false;
            return literal("false", error);
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::kNull;
            return literal("null", error);
        }
        return number_value(out, error);
    }

    bool number_value(JsonValue& out, std::string& error) {
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        out.number = std::strtod(start, &end);
        if (end == start || !std::isfinite(out.number)) {
            error = fail("invalid number");
            return false;
        }
        out.kind = JsonValue::Kind::kNumber;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool array_value(JsonValue& out, std::string& error) {
        out.kind = JsonValue::Kind::kArray;
        ++pos_; // '['
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!value(elem, error)) return false;
            out.array.push_back(std::move(elem));
            skip_ws();
            if (pos_ >= text_.size()) {
                error = fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            error = fail("expected ',' or ']'");
            return false;
        }
    }

    bool object_value(JsonValue& out, std::string& error) {
        out.kind = JsonValue::Kind::kObject;
        ++pos_; // '{'
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                error = fail("expected object key");
                return false;
            }
            std::string key;
            if (!string_value(key, error)) return false;
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                error = fail("expected ':'");
                return false;
            }
            ++pos_;
            JsonValue val;
            if (!value(val, error)) return false;
            out.object.emplace_back(std::move(key), std::move(val));
            skip_ws();
            if (pos_ >= text_.size()) {
                error = fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            error = fail("expected ',' or '}'");
            return false;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

double number_or(const JsonValue* v, double fallback) {
    return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                               : fallback;
}

} // namespace

std::vector<TraceRecord> load_chrome_trace(const std::string& path,
                                           std::string* error) {
    const auto set_error = [&](const std::string& message) {
        if (error != nullptr) *error = message;
    };
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        set_error("cannot open " + path);
        return {};
    }
    std::ostringstream buffer;
    buffer << f.rdbuf();
    const std::string text = buffer.str();

    JsonValue root;
    std::string parse_error;
    if (!JsonParser(text).parse(root, parse_error)) {
        set_error(path + ": " + parse_error);
        return {};
    }

    // Accept both the object form {"traceEvents": [...]} and the bare
    // array form that some exporters emit.
    const JsonValue* events = &root;
    if (root.kind == JsonValue::Kind::kObject) {
        events = root.find("traceEvents");
        if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
            set_error(path + ": no traceEvents array");
            return {};
        }
    } else if (root.kind != JsonValue::Kind::kArray) {
        set_error(path + ": top-level value is neither object nor array");
        return {};
    }

    std::vector<TraceRecord> records;
    for (const JsonValue& ev : events->array) {
        if (ev.kind != JsonValue::Kind::kObject) continue;
        const JsonValue* ph = ev.find("ph");
        if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
            ph->string != "X")
            continue; // metadata / non-complete events
        TraceRecord rec;
        const JsonValue* name = ev.find("name");
        rec.name = name != nullptr && name->kind == JsonValue::Kind::kString
                       ? name->string
                       : "?";
        rec.ts_us = number_or(ev.find("ts"), 0.0);
        rec.dur_us = number_or(ev.find("dur"), 0.0);
        rec.tid = static_cast<std::int64_t>(number_or(ev.find("tid"), 0.0));
        if (const JsonValue* args = ev.find("args");
            args != nullptr && args->kind == JsonValue::Kind::kObject)
            rec.cpu_ms = number_or(args->find("cpu_ms"), 0.0);
        records.push_back(std::move(rec));
    }
    return records;
}

std::vector<FoldedSpan> fold_spans(const std::vector<TraceRecord>& records) {
    std::vector<const TraceRecord*> sorted;
    sorted.reserve(records.size());
    for (const TraceRecord& rec : records) sorted.push_back(&rec);
    std::sort(sorted.begin(), sorted.end(),
              [](const TraceRecord* a, const TraceRecord* b) {
                  if (a->tid != b->tid) return a->tid < b->tid;
                  if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                  return a->dur_us > b->dur_us; // parent before equal-start child
              });

    struct Agg {
        std::uint64_t count = 0;
        double total_ms = 0.0;
        double child_ms = 0.0;
        double cpu_ms = 0.0;
    };
    std::map<std::string, Agg> aggs;

    // Per-thread interval nesting: a record is a child of the innermost
    // still-open interval that contains its start.
    std::vector<std::pair<double, std::string>> stack; // (end_us, name)
    std::int64_t current_tid = -1;
    for (const TraceRecord* rec : sorted) {
        if (rec->tid != current_tid) {
            stack.clear();
            current_tid = rec->tid;
        }
        while (!stack.empty() && stack.back().first <= rec->ts_us)
            stack.pop_back();
        Agg& agg = aggs[rec->name];
        ++agg.count;
        agg.total_ms += rec->dur_us * 1e-3;
        agg.cpu_ms += rec->cpu_ms;
        if (!stack.empty()) aggs[stack.back().second].child_ms += rec->dur_us * 1e-3;
        stack.emplace_back(rec->ts_us + rec->dur_us, rec->name);
    }

    std::vector<FoldedSpan> folded;
    folded.reserve(aggs.size());
    for (auto& [name, agg] : aggs) {
        FoldedSpan span;
        span.name = name;
        span.count = agg.count;
        span.total_ms = agg.total_ms;
        span.self_ms = std::max(0.0, agg.total_ms - agg.child_ms);
        span.cpu_ms = agg.cpu_ms;
        folded.push_back(std::move(span));
    }
    std::sort(folded.begin(), folded.end(),
              [](const FoldedSpan& a, const FoldedSpan& b) {
                  if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
                  return a.name < b.name;
              });
    return folded;
}

std::string fold_report(const std::vector<TraceRecord>& records,
                        std::size_t top_n) {
    const auto folded = fold_spans(records);
    if (folded.empty()) return "no complete spans in trace\n";

    double total_self_ms = 0.0;
    for (const FoldedSpan& span : folded) total_self_ms += span.self_ms;

    util::TablePrinter table(
        {"Span", "Count", "Total/ms", "Self/ms", "CPU/ms", "Self%"});
    const std::size_t n = std::min(top_n, folded.size());
    for (std::size_t i = 0; i < n; ++i) {
        const FoldedSpan& span = folded[i];
        table.add_row({span.name, std::to_string(span.count),
                       util::TablePrinter::num(span.total_ms, 3),
                       util::TablePrinter::num(span.self_ms, 3),
                       util::TablePrinter::num(span.cpu_ms, 3),
                       util::TablePrinter::num(
                           total_self_ms > 0.0
                               ? 100.0 * span.self_ms / total_self_ms
                               : 0.0,
                           1)});
    }
    std::ostringstream out;
    out << table.str();
    if (folded.size() > n)
        out << "(" << folded.size() - n << " more spans below the top " << n
            << ")\n";
    return out.str();
}

} // namespace amret::obs
