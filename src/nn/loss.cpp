#include "nn/loss.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace amret::nn {

using tensor::Tensor;

SoftmaxCeResult softmax_cross_entropy(const Tensor& logits,
                                      const std::vector<int>& labels) {
    AMRET_OBS_SPAN("nn.loss.softmax_ce");
    assert(logits.rank() == 2);
    const std::int64_t n = logits.dim(0), c = logits.dim(1);
    assert(labels.size() == static_cast<std::size_t>(n));
    SoftmaxCeResult result;
    result.probs = Tensor(logits.shape());

    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = logits.data() + i * c;
        float mx = row[0];
        for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (std::int64_t j = 0; j < c; ++j)
            denom += std::exp(static_cast<double>(row[j]) - mx);
        const double log_denom = std::log(denom);
        float* prow = result.probs.data() + i * c;
        for (std::int64_t j = 0; j < c; ++j)
            prow[j] = static_cast<float>(
                std::exp(static_cast<double>(row[j]) - mx - log_denom));
        const int label = labels[static_cast<std::size_t>(i)];
        assert(label >= 0 && label < c);
        total += -(static_cast<double>(row[label]) - mx - log_denom);
    }
    result.loss = total / static_cast<double>(n);
    return result;
}

Tensor softmax_cross_entropy_grad(const Tensor& probs,
                                  const std::vector<int>& labels) {
    const std::int64_t n = probs.dim(0), c = probs.dim(1);
    assert(labels.size() == static_cast<std::size_t>(n));
    Tensor grad = probs;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) {
        float* row = grad.data() + i * c;
        row[labels[static_cast<std::size_t>(i)]] -= 1.0f;
        for (std::int64_t j = 0; j < c; ++j) row[j] *= inv_n;
    }
    return grad;
}

double topk_accuracy(const Tensor& logits, const std::vector<int>& labels, int k) {
    assert(logits.rank() == 2);
    const std::int64_t n = logits.dim(0), c = logits.dim(1);
    assert(labels.size() == static_cast<std::size_t>(n));
    k = std::min<int>(k, static_cast<int>(c));
    std::int64_t hits = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = logits.data() + i * c;
        const float target = row[labels[static_cast<std::size_t>(i)]];
        // Rank of the target logit: number of strictly larger entries.
        int larger = 0;
        for (std::int64_t j = 0; j < c; ++j)
            if (row[j] > target) ++larger;
        if (larger < k) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(n);
}

} // namespace amret::nn
