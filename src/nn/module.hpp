/// \file module.hpp
/// \brief Layer abstraction: explicit forward/backward with cached state.
///
/// amret uses layer-local backpropagation (as in classic frameworks) rather
/// than a tape: each Module caches what it needs during forward and returns
/// the input gradient from backward. Parameters expose value and gradient
/// tensors that optimizers update in place.
#pragma once

#include "tensor/tensor.hpp"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace amret::nn {

/// A learnable parameter: value plus accumulated gradient.
struct Param {
    std::string name;
    tensor::Tensor value;
    tensor::Tensor grad;

    Param() = default;
    Param(std::string n, tensor::Tensor v)
        : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

    void zero_grad() { grad.fill(0.0f); }
};

/// Base class for all layers and containers.
class Module {
public:
    virtual ~Module() = default;

    /// Computes the layer output; must cache anything backward needs.
    virtual tensor::Tensor forward(const tensor::Tensor& x) = 0;

    /// Propagates the output gradient; accumulates into parameter grads and
    /// returns the input gradient. Must follow a matching forward call.
    virtual tensor::Tensor backward(const tensor::Tensor& gy) = 0;

    /// Appends pointers to this module's parameters (and its children's).
    virtual void collect_params(std::vector<Param*>& out) { (void)out; }

    /// Human-readable layer name for summaries.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Switches train/eval behaviour (BatchNorm, observers); containers
    /// propagate to children.
    virtual void set_training(bool training) { training_ = training; }
    [[nodiscard]] bool training() const { return training_; }

    /// Visits this module and (for containers) every descendant, pre-order.
    /// Used e.g. to swap the multiplier in every approximate layer at once.
    virtual void visit(const std::function<void(Module&)>& fn) { fn(*this); }

    /// Appends non-parameter state (BatchNorm running stats, quantization
    /// observer ranges) to \p out; paired with load_extra_state. Containers
    /// do NOT recurse — train::snapshot drives the traversal via visit().
    virtual void save_extra_state(std::vector<float>& out) const { (void)out; }

    /// Restores state written by save_extra_state, advancing \p cursor.
    virtual void load_extra_state(const float*& cursor) { (void)cursor; }

    /// All parameters as a flat list.
    [[nodiscard]] std::vector<Param*> params() {
        std::vector<Param*> out;
        collect_params(out);
        return out;
    }

    /// Sets every parameter gradient to zero.
    void zero_grad() {
        for (Param* p : params()) p->zero_grad();
    }

    /// Total number of learnable scalars.
    [[nodiscard]] std::int64_t num_params() {
        std::int64_t n = 0;
        for (Param* p : params()) n += p->value.numel();
        return n;
    }

protected:
    bool training_ = true;
};

/// Ordered container of sub-modules.
class Sequential : public Module {
public:
    Sequential() = default;

    /// Appends a layer; returns a typed pointer for further configuration.
    template <typename M, typename... Args>
    M* emplace(Args&&... args) {
        auto mod = std::make_unique<M>(std::forward<Args>(args)...);
        M* raw = mod.get();
        children_.push_back(std::move(mod));
        return raw;
    }

    void append(std::unique_ptr<Module> m) { children_.push_back(std::move(m)); }

    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    void collect_params(std::vector<Param*>& out) override;
    void set_training(bool training) override;
    void visit(const std::function<void(Module&)>& fn) override;
    [[nodiscard]] std::string name() const override { return "Sequential"; }

    [[nodiscard]] std::size_t size() const { return children_.size(); }
    [[nodiscard]] Module* child(std::size_t i) { return children_[i].get(); }

private:
    std::vector<std::unique_ptr<Module>> children_;
};

} // namespace amret::nn
