/// \file module.hpp
/// \brief Layer abstraction: explicit forward/backward over a re-entrant
///        per-invocation Context.
///
/// amret uses layer-local backpropagation (as in classic frameworks) rather
/// than a tape: forward stores what the matching backward needs in the
/// caller-supplied nn::Context, and backward returns the input gradient.
/// Modules themselves hold only persistent state — parameters, BatchNorm
/// running statistics, observer ranges — so one model instance can run any
/// number of concurrent forward/backward pairs as long as each uses its own
/// Context (DESIGN.md §11). Parameters expose value and gradient tensors
/// that optimizers update in place; under Context gradient shadowing the
/// accumulation target is per-context instead.
#pragma once

#include "nn/context.hpp"
#include "tensor/tensor.hpp"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace amret::nn {

/// A learnable parameter: value plus accumulated gradient.
struct Param {
    std::string name;
    tensor::Tensor value;
    tensor::Tensor grad;

    Param() = default;
    Param(std::string n, tensor::Tensor v)
        : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

    void zero_grad() { grad.fill(0.0f); }
};

/// How a layer's training-mode forward couples samples across the batch.
/// The microbatch executor uses this to decide which layers may run on
/// batch slices in parallel and which must see the whole batch at once.
/// Ordered by strength so containers can take the max over children.
enum class BatchCoupling {
    /// Output row i depends only on input row i — safe to slice.
    kSampleLocal = 0,
    /// Per-sample compute, but a batch-level statistic must update exactly
    /// once per step (quantization observers): run batch_pre_pass on the
    /// full batch, then forward slices with observers frozen.
    kStatsCoupled = 1,
    /// Forward mixes samples (BatchNorm batch statistics) or the coupling
    /// is unknown (composite blocks): must run on the full batch.
    kBatchCoupled = 2,
};

/// Base class for all layers and containers.
class Module {
public:
    virtual ~Module() = default;

    /// Computes the layer output. Anything the matching backward needs is
    /// stored in \p ctx (never in the module), so concurrent invocations
    /// with distinct contexts are safe.
    virtual tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) = 0;

    /// Propagates the output gradient; accumulates into parameter grads
    /// (via ctx.grad(param), which may shadow) and returns the input
    /// gradient. Must follow a matching forward on the same \p ctx.
    virtual tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) = 0;

    /// Batch-coupling class of this module in its current mode. The safe
    /// default is kBatchCoupled (run on the full batch); sample-local
    /// layers override this as an explicit promise.
    [[nodiscard]] virtual BatchCoupling coupling() const {
        return BatchCoupling::kBatchCoupled;
    }

    /// For kStatsCoupled modules: consumes the full-batch input once per
    /// step (observer EMA updates) before sliced forwards run with
    /// observers frozen. Default: nothing.
    virtual void batch_pre_pass(const tensor::Tensor& x) { (void)x; }

    /// Appends pointers to this module's parameters (and its children's).
    virtual void collect_params(std::vector<Param*>& out) { (void)out; }

    /// Human-readable layer name for summaries.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Switches train/eval behaviour (BatchNorm, observers); containers
    /// propagate to children.
    virtual void set_training(bool training) { training_ = training; }
    [[nodiscard]] bool training() const { return training_; }

    /// Visits this module and (for containers) every descendant, pre-order.
    /// Used e.g. to swap the multiplier in every approximate layer at once.
    virtual void visit(const std::function<void(Module&)>& fn) { fn(*this); }

    /// Appends non-parameter state (BatchNorm running stats, quantization
    /// observer ranges) to \p out; paired with load_extra_state. Containers
    /// do NOT recurse — train::snapshot drives the traversal via visit().
    virtual void save_extra_state(std::vector<float>& out) const { (void)out; }

    /// Restores state written by save_extra_state, advancing \p cursor.
    virtual void load_extra_state(const float*& cursor) { (void)cursor; }

    /// All parameters as a flat list.
    [[nodiscard]] std::vector<Param*> params() {
        std::vector<Param*> out;
        collect_params(out);
        return out;
    }

    /// Sets every parameter gradient to zero.
    void zero_grad() {
        for (Param* p : params()) p->zero_grad();
    }

    /// Total number of learnable scalars.
    [[nodiscard]] std::int64_t num_params() {
        std::int64_t n = 0;
        for (Param* p : params()) n += p->value.numel();
        return n;
    }

protected:
    bool training_ = true;
};

/// Ordered container of sub-modules.
class Sequential : public Module {
public:
    Sequential() = default;

    /// Appends a layer; returns a typed pointer for further configuration.
    template <typename M, typename... Args>
    M* emplace(Args&&... args) {
        auto mod = std::make_unique<M>(std::forward<Args>(args)...);
        M* raw = mod.get();
        children_.push_back(std::move(mod));
        return raw;
    }

    void append(std::unique_ptr<Module> m) { children_.push_back(std::move(m)); }

    tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) override;
    [[nodiscard]] BatchCoupling coupling() const override;
    void collect_params(std::vector<Param*>& out) override;
    void set_training(bool training) override;
    void visit(const std::function<void(Module&)>& fn) override;
    [[nodiscard]] std::string name() const override { return "Sequential"; }

    [[nodiscard]] std::size_t size() const { return children_.size(); }
    [[nodiscard]] Module* child(std::size_t i) { return children_[i].get(); }

private:
    std::vector<std::unique_ptr<Module>> children_;
};

} // namespace amret::nn
