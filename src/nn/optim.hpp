/// \file optim.hpp
/// \brief SGD and Adam optimizers plus the paper's step learning-rate rule.
#pragma once

#include "nn/module.hpp"

#include <map>
#include <vector>

namespace amret::nn {

/// Base optimizer; the learning rate is mutable for scheduling.
class Optimizer {
public:
    explicit Optimizer(double lr) : lr_(lr) {}
    virtual ~Optimizer() = default;

    /// Applies one update using each parameter's accumulated gradient.
    virtual void step(const std::vector<Param*>& params) = 0;

    /// Appends the optimizer's slot state (moments, step counter) to \p out
    /// in \p params order, for checkpointing. Stateless optimizers append
    /// nothing.
    virtual void save_state(const std::vector<Param*>& params,
                            std::vector<float>& out) const {
        (void)params;
        (void)out;
    }

    /// Restores state written by save_state against the same parameter
    /// list. Returns false (leaving the optimizer fresh) on a size
    /// mismatch; an empty \p data always succeeds as "start fresh".
    virtual bool load_state(const std::vector<Param*>& params,
                            const std::vector<float>& data) {
        (void)params;
        return data.empty();
    }

    void set_lr(double lr) { lr_ = lr; }
    [[nodiscard]] double lr() const { return lr_; }

protected:
    double lr_;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd : public Optimizer {
public:
    explicit Sgd(double lr, double momentum = 0.9, double weight_decay = 0.0)
        : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {}

    void step(const std::vector<Param*>& params) override;
    void save_state(const std::vector<Param*>& params,
                    std::vector<float>& out) const override;
    bool load_state(const std::vector<Param*>& params,
                    const std::vector<float>& data) override;

private:
    double momentum_, weight_decay_;
    std::map<Param*, tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba), the paper's optimizer.
class Adam : public Optimizer {
public:
    explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8, double weight_decay = 0.0)
        : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
          weight_decay_(weight_decay) {}

    void step(const std::vector<Param*>& params) override;
    void save_state(const std::vector<Param*>& params,
                    std::vector<float>& out) const override;
    bool load_state(const std::vector<Param*>& params,
                    const std::vector<float>& data) override;

private:
    struct State {
        tensor::Tensor m, v;
    };
    double beta1_, beta2_, eps_, weight_decay_;
    long t_ = 0;
    std::map<Param*, State> state_;
};

/// The paper's retraining schedule (Sec. V-A): the base rate for the first
/// third of the epochs, halved for the second third, halved again for the
/// last (0.001 / 0.0005 / 0.00025 over 30 epochs).
double paper_lr_schedule(double base_lr, int epoch, int total_epochs);

} // namespace amret::nn
