#include "nn/context.hpp"

#include "nn/module.hpp"

namespace amret::nn {

tensor::Tensor& Context::grad(Param& p) {
    if (!shadow_grads_) return p.grad;
    auto [it, inserted] = shadows_.try_emplace(&p);
    if (inserted) it->second = tensor::Tensor(p.value.shape());
    return it->second;
}

const tensor::Tensor* Context::shadow(const Param& p) const {
    const auto it = shadows_.find(&p);
    return it == shadows_.end() ? nullptr : &it->second;
}

void Context::zero_shadows() {
    for (auto& [param, shadow] : shadows_) shadow.fill(0.0f);
}

} // namespace amret::nn
