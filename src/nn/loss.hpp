/// \file loss.hpp
/// \brief Softmax cross-entropy loss and classification metrics.
#pragma once

#include "tensor/tensor.hpp"

#include <cstdint>
#include <vector>

namespace amret::nn {

/// Numerically stable softmax cross-entropy over logits (N, C).
class SoftmaxCrossEntropy {
public:
    /// Mean loss over the batch; caches softmax probabilities.
    double forward(const tensor::Tensor& logits, const std::vector<int>& labels);

    /// Gradient w.r.t. the logits of the last forward call.
    [[nodiscard]] tensor::Tensor backward() const;

    /// Probabilities from the last forward (N, C).
    [[nodiscard]] const tensor::Tensor& probs() const { return probs_; }

private:
    tensor::Tensor probs_;
    std::vector<int> labels_;
};

/// Fraction of rows whose true label is among the top-k logits.
double topk_accuracy(const tensor::Tensor& logits, const std::vector<int>& labels,
                     int k);

/// Convenience wrappers for the paper's reported metrics.
inline double top1_accuracy(const tensor::Tensor& logits, const std::vector<int>& labels) {
    return topk_accuracy(logits, labels, 1);
}
inline double top5_accuracy(const tensor::Tensor& logits, const std::vector<int>& labels) {
    return topk_accuracy(logits, labels, 5);
}

} // namespace amret::nn
