/// \file loss.hpp
/// \brief Softmax cross-entropy loss and classification metrics.
///
/// The loss is a pair of stateless free functions (forward returns the
/// probabilities the gradient needs), so it is re-entrant by construction —
/// concurrent trainer workers share nothing.
#pragma once

#include "tensor/tensor.hpp"

#include <cstdint>
#include <vector>

namespace amret::nn {

/// Result of a softmax cross-entropy forward pass.
struct SoftmaxCeResult {
    double loss = 0.0;     ///< mean loss over the batch
    tensor::Tensor probs;  ///< softmax probabilities (N, C)
};

/// Numerically stable softmax cross-entropy over logits (N, C).
SoftmaxCeResult softmax_cross_entropy(const tensor::Tensor& logits,
                                      const std::vector<int>& labels);

/// Gradient w.r.t. the logits, from the probabilities returned by
/// softmax_cross_entropy (mean reduction: each row scaled by 1/N).
tensor::Tensor softmax_cross_entropy_grad(const tensor::Tensor& probs,
                                          const std::vector<int>& labels);

/// Fraction of rows whose true label is among the top-k logits.
double topk_accuracy(const tensor::Tensor& logits, const std::vector<int>& labels,
                     int k);

/// Convenience wrappers for the paper's reported metrics.
inline double top1_accuracy(const tensor::Tensor& logits, const std::vector<int>& labels) {
    return topk_accuracy(logits, labels, 1);
}
inline double top5_accuracy(const tensor::Tensor& logits, const std::vector<int>& labels) {
    return topk_accuracy(logits, labels, 5);
}

} // namespace amret::nn
