#include "nn/module.hpp"

#include <algorithm>

namespace amret::nn {

tensor::Tensor Sequential::forward(const tensor::Tensor& x, Context& ctx) {
    tensor::Tensor cur = x;
    for (auto& child : children_) cur = child->forward(cur, ctx);
    return cur;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& gy, Context& ctx) {
    tensor::Tensor cur = gy;
    for (auto it = children_.rbegin(); it != children_.rend(); ++it)
        cur = (*it)->backward(cur, ctx);
    return cur;
}

BatchCoupling Sequential::coupling() const {
    BatchCoupling strongest = BatchCoupling::kSampleLocal;
    for (const auto& child : children_)
        strongest = std::max(strongest, child->coupling());
    return strongest;
}

void Sequential::collect_params(std::vector<Param*>& out) {
    for (auto& child : children_) child->collect_params(out);
}

void Sequential::set_training(bool training) {
    Module::set_training(training);
    for (auto& child : children_) child->set_training(training);
}

void Sequential::visit(const std::function<void(Module&)>& fn) {
    fn(*this);
    for (auto& child : children_) child->visit(fn);
}

} // namespace amret::nn
