#include "nn/optim.hpp"

#include "obs/trace.hpp"

#include <cmath>

namespace amret::nn {

void Sgd::step(const std::vector<Param*>& params) {
    AMRET_OBS_SPAN("nn.optim.step");
    for (Param* p : params) {
        auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
        tensor::Tensor& vel = it->second;
        const float lr = static_cast<float>(lr_);
        const float mu = static_cast<float>(momentum_);
        const float wd = static_cast<float>(weight_decay_);
        for (std::int64_t i = 0; i < p->value.numel(); ++i) {
            const float g = p->grad[i] + wd * p->value[i];
            vel[i] = mu * vel[i] + g;
            p->value[i] -= lr * vel[i];
        }
    }
}

void Adam::step(const std::vector<Param*>& params) {
    AMRET_OBS_SPAN("nn.optim.step");
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, t_);
    const double bc2 = 1.0 - std::pow(beta2_, t_);
    for (Param* p : params) {
        auto [it, inserted] = state_.try_emplace(
            p, State{tensor::Tensor(p->value.shape()), tensor::Tensor(p->value.shape())});
        State& s = it->second;
        const float b1 = static_cast<float>(beta1_);
        const float b2 = static_cast<float>(beta2_);
        const float wd = static_cast<float>(weight_decay_);
        for (std::int64_t i = 0; i < p->value.numel(); ++i) {
            const float g = p->grad[i] + wd * p->value[i];
            s.m[i] = b1 * s.m[i] + (1.0f - b1) * g;
            s.v[i] = b2 * s.v[i] + (1.0f - b2) * g * g;
            const double mhat = s.m[i] / bc1;
            const double vhat = s.v[i] / bc2;
            p->value[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
        }
    }
}

void Sgd::save_state(const std::vector<Param*>& params,
                     std::vector<float>& out) const {
    // Layout: per param (in params order), numel velocity floats. Params
    // never stepped yet serialize as zeros, matching a fresh slot.
    for (const Param* p : params) {
        const auto it = velocity_.find(const_cast<Param*>(p));
        for (std::int64_t i = 0; i < p->value.numel(); ++i)
            out.push_back(it != velocity_.end() ? it->second[i] : 0.0f);
    }
}

bool Sgd::load_state(const std::vector<Param*>& params,
                     const std::vector<float>& data) {
    if (data.empty()) return true;
    std::size_t expected = 0;
    for (const Param* p : params)
        expected += static_cast<std::size_t>(p->value.numel());
    if (data.size() != expected) return false;
    velocity_.clear();
    const float* cursor = data.data();
    for (Param* p : params) {
        tensor::Tensor vel(p->value.shape());
        for (std::int64_t i = 0; i < vel.numel(); ++i) vel[i] = *cursor++;
        velocity_.emplace(p, std::move(vel));
    }
    return true;
}

void Adam::save_state(const std::vector<Param*>& params,
                      std::vector<float>& out) const {
    // Layout: step counter (exact in float up to 2^24 steps), then per
    // param (in params order) the m moments followed by the v moments.
    out.push_back(static_cast<float>(t_));
    for (const Param* p : params) {
        const auto it = state_.find(const_cast<Param*>(p));
        for (std::int64_t i = 0; i < p->value.numel(); ++i)
            out.push_back(it != state_.end() ? it->second.m[i] : 0.0f);
        for (std::int64_t i = 0; i < p->value.numel(); ++i)
            out.push_back(it != state_.end() ? it->second.v[i] : 0.0f);
    }
}

bool Adam::load_state(const std::vector<Param*>& params,
                      const std::vector<float>& data) {
    if (data.empty()) return true;
    std::size_t expected = 1;
    for (const Param* p : params)
        expected += 2 * static_cast<std::size_t>(p->value.numel());
    if (data.size() != expected) return false;
    state_.clear();
    const float* cursor = data.data();
    t_ = static_cast<long>(*cursor++);
    for (Param* p : params) {
        State s{tensor::Tensor(p->value.shape()), tensor::Tensor(p->value.shape())};
        for (std::int64_t i = 0; i < s.m.numel(); ++i) s.m[i] = *cursor++;
        for (std::int64_t i = 0; i < s.v.numel(); ++i) s.v[i] = *cursor++;
        state_.emplace(p, std::move(s));
    }
    return true;
}

double paper_lr_schedule(double base_lr, int epoch, int total_epochs) {
    if (total_epochs <= 0) return base_lr;
    const int third = (epoch * 3) / total_epochs; // 0, 1, 2
    return base_lr / static_cast<double>(1 << (third < 2 ? third : 2));
}

} // namespace amret::nn
