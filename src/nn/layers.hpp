/// \file layers.hpp
/// \brief Standard float layers: Linear, BatchNorm2d, ReLU, pooling, Flatten.
///
/// Convolutions live in `approx/approx_conv.hpp` — every conv in the models
/// is an ApproxConv2d that can run in float, quantized-exact, or quantized-
/// approximate mode, matching the paper's flow where conv layers are the
/// approximated ones and everything else stays float.
#pragma once

#include "nn/module.hpp"

#include <cstdint>

namespace amret::nn {

/// Fully connected layer y = x W^T + b for x: (N, in), W: (out, in).
class Linear : public Module {
public:
    Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    void collect_params(std::vector<Param*>& out) override;
    [[nodiscard]] std::string name() const override { return "Linear"; }

    Param weight; ///< (out, in)
    Param bias;   ///< (out)

private:
    tensor::Tensor cached_x_;
};

/// 2-D batch normalization over (N, C, H, W) with running statistics.
class BatchNorm2d : public Module {
public:
    explicit BatchNorm2d(std::int64_t channels, float momentum = 0.9f,
                         float eps = 1e-5f);

    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    void collect_params(std::vector<Param*>& out) override;
    void save_extra_state(std::vector<float>& out) const override;
    void load_extra_state(const float*& cursor) override;
    [[nodiscard]] std::string name() const override { return "BatchNorm2d"; }

    Param gamma; ///< (C)
    Param beta;  ///< (C)

    [[nodiscard]] const tensor::Tensor& running_mean() const { return running_mean_; }
    [[nodiscard]] const tensor::Tensor& running_var() const { return running_var_; }

private:
    std::int64_t channels_;
    float momentum_, eps_;
    tensor::Tensor running_mean_, running_var_;
    // Caches for backward (training mode).
    tensor::Tensor cached_xhat_;
    tensor::Tensor cached_invstd_; // (C)
    std::int64_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
};

/// Elementwise max(x, 0).
class ReLU : public Module {
public:
    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    [[nodiscard]] std::string name() const override { return "ReLU"; }

private:
    std::vector<std::uint8_t> mask_;
};

/// Non-overlapping max pooling with kernel == stride.
class MaxPool2d : public Module {
public:
    explicit MaxPool2d(std::int64_t kernel = 2) : kernel_(kernel) {}

    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

private:
    std::int64_t kernel_;
    tensor::Shape in_shape_;
    std::vector<std::int64_t> argmax_;
};

/// Non-overlapping average pooling with kernel == stride.
class AvgPool2d : public Module {
public:
    explicit AvgPool2d(std::int64_t kernel = 2) : kernel_(kernel) {}

    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    [[nodiscard]] std::string name() const override { return "AvgPool2d"; }

private:
    std::int64_t kernel_;
    tensor::Shape in_shape_;
};

/// Inverted dropout: active in training mode only; scales kept activations
/// by 1/(1-p) so evaluation needs no correction.
class Dropout : public Module {
public:
    explicit Dropout(float p = 0.5f, std::uint64_t seed = 17)
        : p_(p), rng_(seed) {}

    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    [[nodiscard]] std::string name() const override { return "Dropout"; }

private:
    float p_;
    util::Rng rng_;
    std::vector<float> mask_;
};

/// Global average pooling (N, C, H, W) -> (N, C).
class GlobalAvgPool : public Module {
public:
    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

private:
    tensor::Shape in_shape_;
};

/// Collapses all non-batch dimensions: (N, ...) -> (N, prod).
class Flatten : public Module {
public:
    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    [[nodiscard]] std::string name() const override { return "Flatten"; }

private:
    tensor::Shape in_shape_;
};

} // namespace amret::nn
