/// \file layers.hpp
/// \brief Standard float layers: Linear, BatchNorm2d, ReLU, pooling, Flatten.
///
/// Convolutions live in `approx/approx_conv.hpp` — every conv in the models
/// is an ApproxConv2d that can run in float, quantized-exact, or quantized-
/// approximate mode, matching the paper's flow where conv layers are the
/// approximated ones and everything else stays float.
///
/// All per-invocation state (cached activations, pooling argmax indices,
/// dropout masks) lives in the caller's nn::Context; the layer objects hold
/// only parameters and persistent statistics, so they are re-entrant.
#pragma once

#include "nn/module.hpp"

#include <cstdint>

namespace amret::nn {

/// Fully connected layer y = x W^T + b for x: (N, in), W: (out, in).
class Linear : public Module {
public:
    Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) override;
    [[nodiscard]] BatchCoupling coupling() const override {
        return BatchCoupling::kSampleLocal;
    }
    void collect_params(std::vector<Param*>& out) override;
    [[nodiscard]] std::string name() const override { return "Linear"; }

    Param weight; ///< (out, in)
    Param bias;   ///< (out)

private:
    struct State {
        tensor::Tensor x;
    };
};

/// 2-D batch normalization over (N, C, H, W) with running statistics.
class BatchNorm2d : public Module {
public:
    explicit BatchNorm2d(std::int64_t channels, float momentum = 0.9f,
                         float eps = 1e-5f);

    tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) override;
    /// Training-mode statistics mix the whole batch; eval uses the frozen
    /// running estimates and is per-sample.
    [[nodiscard]] BatchCoupling coupling() const override {
        return training_ ? BatchCoupling::kBatchCoupled
                         : BatchCoupling::kSampleLocal;
    }
    void collect_params(std::vector<Param*>& out) override;
    void save_extra_state(std::vector<float>& out) const override;
    void load_extra_state(const float*& cursor) override;
    [[nodiscard]] std::string name() const override { return "BatchNorm2d"; }

    Param gamma; ///< (C)
    Param beta;  ///< (C)

    [[nodiscard]] const tensor::Tensor& running_mean() const { return running_mean_; }
    [[nodiscard]] const tensor::Tensor& running_var() const { return running_var_; }

private:
    struct State {
        tensor::Tensor xhat;
        tensor::Tensor invstd; // (C)
        std::int64_t n = 0, h = 0, w = 0;
    };

    std::int64_t channels_;
    float momentum_, eps_;
    tensor::Tensor running_mean_, running_var_;
};

/// Elementwise max(x, 0).
class ReLU : public Module {
public:
    tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) override;
    [[nodiscard]] BatchCoupling coupling() const override {
        return BatchCoupling::kSampleLocal;
    }
    [[nodiscard]] std::string name() const override { return "ReLU"; }

private:
    struct State {
        std::vector<std::uint8_t> mask;
    };
};

/// Non-overlapping max pooling with kernel == stride.
class MaxPool2d : public Module {
public:
    explicit MaxPool2d(std::int64_t kernel = 2) : kernel_(kernel) {}

    tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) override;
    [[nodiscard]] BatchCoupling coupling() const override {
        return BatchCoupling::kSampleLocal;
    }
    [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

private:
    struct State {
        tensor::Shape in_shape;
        std::vector<std::int64_t> argmax;
    };

    std::int64_t kernel_;
};

/// Non-overlapping average pooling with kernel == stride.
class AvgPool2d : public Module {
public:
    explicit AvgPool2d(std::int64_t kernel = 2) : kernel_(kernel) {}

    tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) override;
    [[nodiscard]] BatchCoupling coupling() const override {
        return BatchCoupling::kSampleLocal;
    }
    [[nodiscard]] std::string name() const override { return "AvgPool2d"; }

private:
    struct State {
        tensor::Shape in_shape;
    };

    std::int64_t kernel_;
};

/// Inverted dropout: active in training mode only; scales kept activations
/// by 1/(1-p) so evaluation needs no correction. Randomness comes from the
/// Context's RNG stream, so reproducibility is controlled by the caller
/// (the trainer reseeds per step/microbatch).
class Dropout : public Module {
public:
    explicit Dropout(float p = 0.5f) : p_(p) {}

    tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) override;
    [[nodiscard]] BatchCoupling coupling() const override {
        return BatchCoupling::kSampleLocal;
    }
    [[nodiscard]] std::string name() const override { return "Dropout"; }

private:
    struct State {
        std::vector<float> mask;
    };

    float p_;
};

/// Global average pooling (N, C, H, W) -> (N, C).
class GlobalAvgPool : public Module {
public:
    tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) override;
    [[nodiscard]] BatchCoupling coupling() const override {
        return BatchCoupling::kSampleLocal;
    }
    [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

private:
    struct State {
        tensor::Shape in_shape;
    };
};

/// Collapses all non-batch dimensions: (N, ...) -> (N, prod).
class Flatten : public Module {
public:
    tensor::Tensor forward(const tensor::Tensor& x, Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, Context& ctx) override;
    [[nodiscard]] BatchCoupling coupling() const override {
        return BatchCoupling::kSampleLocal;
    }
    [[nodiscard]] std::string name() const override { return "Flatten"; }

private:
    struct State {
        tensor::Shape in_shape;
    };
};

} // namespace amret::nn
