#include "nn/layers.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace amret::nn {

using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------- Linear --

Linear::Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng)
    : weight("linear.weight",
             Tensor::he_init(Shape{out_features, in_features}, in_features, rng)),
      bias("linear.bias", Tensor::zeros(Shape{out_features})) {}

Tensor Linear::forward(const Tensor& x, Context& ctx) {
    assert(x.rank() == 2 && x.dim(1) == weight.value.dim(1));
    ctx.state<State>(*this).x = x;
    Tensor y = tensor::matmul_nt(x, weight.value); // (N, out)
    const std::int64_t n = y.dim(0), out = y.dim(1);
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < out; ++j) y[i * out + j] += bias.value[j];
    return y;
}

Tensor Linear::backward(const Tensor& gy, Context& ctx) {
    const State& st = ctx.state<State>(*this);
    assert(gy.rank() == 2 && gy.dim(0) == st.x.dim(0));
    // dW = gy^T x, db = column sums, dx = gy W.
    Tensor dw = tensor::matmul_tn(gy, st.x); // (out, in)
    ctx.grad(weight).add_(dw);
    Tensor& bg = ctx.grad(bias);
    const std::int64_t n = gy.dim(0), out = gy.dim(1);
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < out; ++j) bg[j] += gy[i * out + j];
    return tensor::matmul(gy, weight.value); // (N, in)
}

void Linear::collect_params(std::vector<Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

// ----------------------------------------------------------- BatchNorm2d --

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : gamma("bn.gamma", Tensor::full(Shape{channels}, 1.0f)),
      beta("bn.beta", Tensor::zeros(Shape{channels})),
      channels_(channels),
      momentum_(momentum),
      eps_(eps),
      running_mean_(Shape{channels}),
      running_var_(Tensor::full(Shape{channels}, 1.0f)) {}

Tensor BatchNorm2d::forward(const Tensor& x, Context& ctx) {
    assert(x.rank() == 4 && x.dim(1) == channels_);
    const std::int64_t n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
    const std::int64_t spatial = h * w;
    const std::int64_t per_channel = n * spatial;
    Tensor y(x.shape());

    if (training_) {
        State& st = ctx.state<State>(*this);
        st.n = n;
        st.h = h;
        st.w = w;
        st.xhat = Tensor(x.shape());
        st.invstd = Tensor(Shape{c});
        for (std::int64_t ch = 0; ch < c; ++ch) {
            double mean = 0.0;
            for (std::int64_t i = 0; i < n; ++i) {
                const float* p = x.data() + (i * c + ch) * spatial;
                for (std::int64_t s = 0; s < spatial; ++s) mean += p[s];
            }
            mean /= static_cast<double>(per_channel);
            double var = 0.0;
            for (std::int64_t i = 0; i < n; ++i) {
                const float* p = x.data() + (i * c + ch) * spatial;
                for (std::int64_t s = 0; s < spatial; ++s) {
                    const double d = p[s] - mean;
                    var += d * d;
                }
            }
            var /= static_cast<double>(per_channel);

            running_mean_[ch] = momentum_ * running_mean_[ch] +
                                (1.0f - momentum_) * static_cast<float>(mean);
            running_var_[ch] = momentum_ * running_var_[ch] +
                               (1.0f - momentum_) * static_cast<float>(var);

            const float invstd = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
            st.invstd[ch] = invstd;
            const float g = gamma.value[ch], b = beta.value[ch];
            for (std::int64_t i = 0; i < n; ++i) {
                const float* px = x.data() + (i * c + ch) * spatial;
                float* ph = st.xhat.data() + (i * c + ch) * spatial;
                float* py = y.data() + (i * c + ch) * spatial;
                for (std::int64_t s = 0; s < spatial; ++s) {
                    const float xh = (px[s] - static_cast<float>(mean)) * invstd;
                    ph[s] = xh;
                    py[s] = g * xh + b;
                }
            }
        }
    } else {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            const float invstd = 1.0f / std::sqrt(running_var_[ch] + eps_);
            const float g = gamma.value[ch], b = beta.value[ch];
            const float m = running_mean_[ch];
            for (std::int64_t i = 0; i < n; ++i) {
                const float* px = x.data() + (i * c + ch) * spatial;
                float* py = y.data() + (i * c + ch) * spatial;
                for (std::int64_t s = 0; s < spatial; ++s)
                    py[s] = g * (px[s] - m) * invstd + b;
            }
        }
    }
    return y;
}

Tensor BatchNorm2d::backward(const Tensor& gy, Context& ctx) {
    assert(training_ && "backward through BatchNorm requires training mode");
    const State& st = ctx.state<State>(*this);
    const std::int64_t n = st.n, c = channels_, spatial = st.h * st.w;
    const auto per_channel = static_cast<float>(n * spatial);
    Tensor gx(gy.shape());
    Tensor& gg = ctx.grad(gamma);
    Tensor& gb = ctx.grad(beta);

    for (std::int64_t ch = 0; ch < c; ++ch) {
        // Standard batchnorm backward in terms of xhat:
        // gx = (g*invstd/m) * (m*gy - sum(gy) - xhat * sum(gy*xhat))
        double sum_gy = 0.0, sum_gyxh = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
            const float* pg = gy.data() + (i * c + ch) * spatial;
            const float* ph = st.xhat.data() + (i * c + ch) * spatial;
            for (std::int64_t s = 0; s < spatial; ++s) {
                sum_gy += pg[s];
                sum_gyxh += static_cast<double>(pg[s]) * ph[s];
            }
        }
        gg[ch] += static_cast<float>(sum_gyxh);
        gb[ch] += static_cast<float>(sum_gy);

        const float g = gamma.value[ch];
        const float invstd = st.invstd[ch];
        const float k = g * invstd / per_channel;
        for (std::int64_t i = 0; i < n; ++i) {
            const float* pg = gy.data() + (i * c + ch) * spatial;
            const float* ph = st.xhat.data() + (i * c + ch) * spatial;
            float* px = gx.data() + (i * c + ch) * spatial;
            for (std::int64_t s = 0; s < spatial; ++s) {
                px[s] = k * (per_channel * pg[s] - static_cast<float>(sum_gy) -
                             ph[s] * static_cast<float>(sum_gyxh));
            }
        }
    }
    return gx;
}

void BatchNorm2d::collect_params(std::vector<Param*>& out) {
    out.push_back(&gamma);
    out.push_back(&beta);
}

void BatchNorm2d::save_extra_state(std::vector<float>& out) const {
    for (std::int64_t i = 0; i < channels_; ++i) out.push_back(running_mean_[i]);
    for (std::int64_t i = 0; i < channels_; ++i) out.push_back(running_var_[i]);
}

void BatchNorm2d::load_extra_state(const float*& cursor) {
    for (std::int64_t i = 0; i < channels_; ++i) running_mean_[i] = *cursor++;
    for (std::int64_t i = 0; i < channels_; ++i) running_var_[i] = *cursor++;
}

// ------------------------------------------------------------------ ReLU --

Tensor ReLU::forward(const Tensor& x, Context& ctx) {
    Tensor y = x;
    auto& mask = ctx.state<State>(*this).mask;
    mask.resize(static_cast<std::size_t>(x.numel()));
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        const bool pos = y[i] > 0.0f;
        mask[static_cast<std::size_t>(i)] = pos ? 1 : 0;
        if (!pos) y[i] = 0.0f;
    }
    return y;
}

Tensor ReLU::backward(const Tensor& gy, Context& ctx) {
    const auto& mask = ctx.state<State>(*this).mask;
    assert(static_cast<std::size_t>(gy.numel()) == mask.size());
    Tensor gx = gy;
    for (std::int64_t i = 0; i < gx.numel(); ++i)
        if (!mask[static_cast<std::size_t>(i)]) gx[i] = 0.0f;
    return gx;
}

// ------------------------------------------------------------- MaxPool2d --

Tensor MaxPool2d::forward(const Tensor& x, Context& ctx) {
    assert(x.rank() == 4);
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    assert(h % kernel_ == 0 && w % kernel_ == 0);
    const std::int64_t oh = h / kernel_, ow = w / kernel_;
    State& st = ctx.state<State>(*this);
    st.in_shape = x.shape();
    Tensor y(Shape{n, c, oh, ow});
    st.argmax.assign(static_cast<std::size_t>(y.numel()), 0);

    for (std::int64_t i = 0; i < n * c; ++i) {
        const float* px = x.data() + i * h * w;
        float* py = y.data() + i * oh * ow;
        std::int64_t* pa = st.argmax.data() + i * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
                float best = -std::numeric_limits<float>::infinity();
                std::int64_t best_idx = 0;
                for (std::int64_t ky = 0; ky < kernel_; ++ky) {
                    for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                        const std::int64_t idx =
                            (oy * kernel_ + ky) * w + (ox * kernel_ + kx);
                        if (px[idx] > best) {
                            best = px[idx];
                            best_idx = idx;
                        }
                    }
                }
                py[oy * ow + ox] = best;
                pa[oy * ow + ox] = best_idx;
            }
        }
    }
    return y;
}

Tensor MaxPool2d::backward(const Tensor& gy, Context& ctx) {
    const State& st = ctx.state<State>(*this);
    const std::int64_t n = st.in_shape[0], c = st.in_shape[1], h = st.in_shape[2],
                       w = st.in_shape[3];
    const std::int64_t oh = h / kernel_, ow = w / kernel_;
    assert(gy.numel() == n * c * oh * ow);
    Tensor gx(st.in_shape);
    for (std::int64_t i = 0; i < n * c; ++i) {
        const float* pg = gy.data() + i * oh * ow;
        const std::int64_t* pa = st.argmax.data() + i * oh * ow;
        float* px = gx.data() + i * h * w;
        for (std::int64_t s = 0; s < oh * ow; ++s) px[pa[s]] += pg[s];
    }
    return gx;
}

// ------------------------------------------------------------- AvgPool2d --

Tensor AvgPool2d::forward(const Tensor& x, Context& ctx) {
    assert(x.rank() == 4);
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    assert(h % kernel_ == 0 && w % kernel_ == 0);
    const std::int64_t oh = h / kernel_, ow = w / kernel_;
    ctx.state<State>(*this).in_shape = x.shape();
    Tensor y(Shape{n, c, oh, ow});
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
    for (std::int64_t i = 0; i < n * c; ++i) {
        const float* px = x.data() + i * h * w;
        float* py = y.data() + i * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
                float acc = 0.0f;
                for (std::int64_t ky = 0; ky < kernel_; ++ky)
                    for (std::int64_t kx = 0; kx < kernel_; ++kx)
                        acc += px[(oy * kernel_ + ky) * w + ox * kernel_ + kx];
                py[oy * ow + ox] = acc * inv;
            }
        }
    }
    return y;
}

Tensor AvgPool2d::backward(const Tensor& gy, Context& ctx) {
    const State& st = ctx.state<State>(*this);
    const std::int64_t n = st.in_shape[0], c = st.in_shape[1], h = st.in_shape[2],
                       w = st.in_shape[3];
    const std::int64_t oh = h / kernel_, ow = w / kernel_;
    assert(gy.numel() == n * c * oh * ow);
    Tensor gx(st.in_shape);
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
    for (std::int64_t i = 0; i < n * c; ++i) {
        const float* pg = gy.data() + i * oh * ow;
        float* px = gx.data() + i * h * w;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
                const float g = pg[oy * ow + ox] * inv;
                for (std::int64_t ky = 0; ky < kernel_; ++ky)
                    for (std::int64_t kx = 0; kx < kernel_; ++kx)
                        px[(oy * kernel_ + ky) * w + ox * kernel_ + kx] += g;
            }
        }
    }
    return gx;
}

// --------------------------------------------------------------- Dropout --

Tensor Dropout::forward(const Tensor& x, Context& ctx) {
    auto& mask = ctx.state<State>(*this).mask;
    if (!training_ || p_ <= 0.0f) {
        mask.assign(static_cast<std::size_t>(x.numel()), 1.0f);
        return x;
    }
    Tensor y = x;
    mask.resize(static_cast<std::size_t>(x.numel()));
    const float keep_scale = 1.0f / (1.0f - p_);
    util::Rng& rng = ctx.rng();
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        const float m = rng.bernoulli(p_) ? 0.0f : keep_scale;
        mask[static_cast<std::size_t>(i)] = m;
        y[i] *= m;
    }
    return y;
}

Tensor Dropout::backward(const Tensor& gy, Context& ctx) {
    const auto& mask = ctx.state<State>(*this).mask;
    assert(static_cast<std::size_t>(gy.numel()) == mask.size());
    Tensor gx = gy;
    for (std::int64_t i = 0; i < gx.numel(); ++i)
        gx[i] *= mask[static_cast<std::size_t>(i)];
    return gx;
}

// --------------------------------------------------------- GlobalAvgPool --

Tensor GlobalAvgPool::forward(const Tensor& x, Context& ctx) {
    assert(x.rank() == 4);
    ctx.state<State>(*this).in_shape = x.shape();
    const std::int64_t n = x.dim(0), c = x.dim(1), spatial = x.dim(2) * x.dim(3);
    Tensor y(Shape{n, c});
    for (std::int64_t i = 0; i < n * c; ++i) {
        const float* p = x.data() + i * spatial;
        float acc = 0.0f;
        for (std::int64_t s = 0; s < spatial; ++s) acc += p[s];
        y[i] = acc / static_cast<float>(spatial);
    }
    return y;
}

Tensor GlobalAvgPool::backward(const Tensor& gy, Context& ctx) {
    const State& st = ctx.state<State>(*this);
    const std::int64_t spatial = st.in_shape[2] * st.in_shape[3];
    Tensor gx(st.in_shape);
    const float inv = 1.0f / static_cast<float>(spatial);
    for (std::int64_t i = 0; i < gy.numel(); ++i) {
        float* p = gx.data() + i * spatial;
        const float g = gy[i] * inv;
        for (std::int64_t s = 0; s < spatial; ++s) p[s] = g;
    }
    return gx;
}

// --------------------------------------------------------------- Flatten --

Tensor Flatten::forward(const Tensor& x, Context& ctx) {
    ctx.state<State>(*this).in_shape = x.shape();
    const std::int64_t n = x.dim(0);
    return x.reshaped(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& gy, Context& ctx) {
    return gy.reshaped(ctx.state<State>(*this).in_shape);
}

} // namespace amret::nn
