/// \file context.hpp
/// \brief Per-invocation execution state for the layer stack.
///
/// A Context carries everything a forward/backward pair needs that is not
/// part of the model itself: activation/tape slots (one typed slot per
/// module), a scratch Workspace per (layer, context) pair, the RNG stream
/// used by stochastic layers (Dropout), and — when enabled — per-context
/// gradient shadows that let several backward passes run concurrently
/// through one shared model without racing on Param::grad.
///
/// Modules own only persistent state (weights, BatchNorm running stats,
/// quantization observer ranges); anything produced by a forward call and
/// consumed by the matching backward lives in the Context. Two invocations
/// with two Contexts therefore never alias, which is what makes the
/// microbatch-parallel trainer and concurrent evaluation sound
/// (DESIGN.md §11).
///
/// Lifetime: slots are created lazily on first access and reused across
/// steps, so a long-lived Context reaches an allocation-free steady state
/// (the embedded Workspaces follow the §10 arena rules per layer). A
/// Context must only be used by one thread at a time.
#pragma once

#include "kernels/workspace.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

#include <cassert>
#include <memory>
#include <typeinfo>
#include <unordered_map>

namespace amret::nn {

class Module;
struct Param;

class Context {
public:
    Context() = default;
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    /// Typed per-module state slot, default-constructed on first access.
    /// Each module keys its own slot with `ctx.state<State>(*this)`; the
    /// slot persists across steps so embedded buffers/arenas are reused.
    template <typename T>
    T& state(const Module& m) {
        auto& slot = slots_[&m];
        if (!slot) slot = std::make_unique<Holder<T>>();
        assert(typeid(*slot) == typeid(Holder<T>) &&
               "module registered two different state types in one context");
        return static_cast<Holder<T>*>(slot.get())->value;
    }

    /// Read-only view of a module's slot; nullptr if the module has not run
    /// in this context yet.
    template <typename T>
    [[nodiscard]] const T* peek(const Module& m) const {
        const auto it = slots_.find(&m);
        if (it == slots_.end()) return nullptr;
        const auto* holder = dynamic_cast<const Holder<T>*>(it->second.get());
        return holder ? &holder->value : nullptr;
    }

    /// Context-level scratch arena for callers outside the layer stack
    /// (layers embed their own Workspace in their state slot).
    [[nodiscard]] kernels::Workspace& workspace() { return workspace_; }

    /// RNG stream for stochastic layers (Dropout). The trainer reseeds this
    /// per (step, microbatch) via util::Rng::split so runs are reproducible
    /// at any thread count.
    [[nodiscard]] util::Rng& rng() { return rng_; }
    void seed_rng(const util::Rng& rng) { rng_ = rng; }

    /// When frozen, quantization observers must not update their running
    /// ranges during forward. The microbatch trainer freezes worker
    /// contexts and feeds observers the full batch once via
    /// Module::batch_pre_pass, so EMA state updates exactly once per step.
    void set_observers_frozen(bool frozen) { observers_frozen_ = frozen; }
    [[nodiscard]] bool observers_frozen() const { return observers_frozen_; }

    /// Enables gradient shadowing: grad(p) returns a per-context shadow
    /// tensor instead of p.grad, so concurrent backward passes never race.
    /// The owner reduces shadows into Param::grad in a fixed order.
    void set_shadow_grads(bool enabled) { shadow_grads_ = enabled; }
    [[nodiscard]] bool shadow_grads() const { return shadow_grads_; }

    /// Accumulation target for \p p's gradient in this context: p.grad when
    /// shadowing is off, otherwise a lazily allocated zero-initialized
    /// shadow of the same shape.
    [[nodiscard]] tensor::Tensor& grad(Param& p);

    /// The shadow accumulated for \p p, or nullptr if none exists.
    [[nodiscard]] const tensor::Tensor* shadow(const Param& p) const;

    /// Zeroes every existing shadow (keeps allocations).
    void zero_shadows();

private:
    struct Slot {
        virtual ~Slot() = default;
    };
    template <typename T>
    struct Holder final : Slot {
        T value;
    };

    std::unordered_map<const Module*, std::unique_ptr<Slot>> slots_;
    std::unordered_map<const Param*, tensor::Tensor> shadows_;
    kernels::Workspace workspace_;
    util::Rng rng_;
    bool observers_frozen_ = false;
    bool shadow_grads_ = false;
};

} // namespace amret::nn
