#include "appmult/registry.hpp"

#include "als/als.hpp"
#include "netlist/serialize.hpp"
#include "util/logging.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

namespace amret::appmult {

namespace {

MultiplierInfo spec_entry(std::string name, multgen::MultiplierSpec spec,
                          unsigned default_hws, std::string family) {
    MultiplierInfo info;
    info.name = std::move(name);
    info.bits = spec.bits;
    info.approximate = spec.is_approximate();
    info.construction = Construction::kSpec;
    info.spec = std::move(spec);
    info.default_hws = default_hws;
    info.family = std::move(family);
    return info;
}

MultiplierInfo als_entry(std::string name, unsigned bits, double nmed_budget,
                         bool wire_substitution, unsigned default_hws) {
    MultiplierInfo info;
    info.name = std::move(name);
    info.bits = bits;
    info.approximate = true;
    info.construction = Construction::kAls;
    info.spec = multgen::exact_spec(bits);
    info.als_nmed_budget = nmed_budget;
    info.als_wire_substitution = wire_substitution;
    info.default_hws = default_hws;
    info.family = "approximate logic synthesis (NMED budget " +
                  std::to_string(nmed_budget) + ")";
    return info;
}

} // namespace

Registry::Registry() {
    using multgen::broken_array_spec;
    using multgen::exact_spec;
    using multgen::or_compressed_spec;
    using multgen::perforated_spec;
    using multgen::truncated_or_spec;
    using multgen::truncated_spec;

    std::vector<MultiplierInfo> infos;
    // --- 8-bit (Table I order) ---
    infos.push_back(spec_entry("mul8u_acc", exact_spec(8), 0, "exact array"));
    infos.push_back(als_entry("mul8u_syn1", 8, 0.0028, true, 16));
    infos.push_back(als_entry("mul8u_syn2", 8, 0.0034, false, 16));
    infos.push_back(spec_entry("mul8u_2NDH", broken_array_spec(8, 7, 6, 2), 32,
                               "broken array (trunc 7, rows>=6 keep j>=2)"));
    infos.push_back(spec_entry("mul8u_17C8", truncated_or_spec(8, 7, 8), 16,
                               "truncated 7 columns, OR-compressed column 7"));
    infos.push_back(spec_entry("mul8u_1DMU", perforated_spec(8, {1, 2}), 32,
                               "perforated rows {1,2}"));
    infos.push_back(spec_entry("mul8u_17R6", or_compressed_spec(8, 9), 32,
                               "OR-compressed low 9 columns"));
    infos.push_back(spec_entry("mul8u_rm8", truncated_spec(8, 8), 16,
                               "truncated 8 columns (paper _rm8)"));
    // --- 7-bit ---
    infos.push_back(spec_entry("mul7u_acc", exact_spec(7), 0, "exact array"));
    infos.push_back(spec_entry("mul7u_06Q", or_compressed_spec(7, 6), 4,
                               "OR-compressed low 6 columns"));
    infos.push_back(spec_entry("mul7u_073", broken_array_spec(7, 5, 5, 1), 2,
                               "broken array (trunc 5, rows>=5 keep j>=1)"));
    infos.push_back(spec_entry("mul7u_rm6", truncated_spec(7, 6), 2,
                               "truncated 6 columns (paper Fig. 2)"));
    infos.push_back(als_entry("mul7u_syn1", 7, 0.0028, true, 8));
    infos.push_back(als_entry("mul7u_syn2", 7, 0.0040, false, 8));
    infos.push_back(spec_entry("mul7u_081", perforated_spec(7, {1}), 16,
                               "perforated row {1}"));
    infos.push_back(spec_entry("mul7u_08E", truncated_or_spec(7, 3, 7), 4,
                               "truncated 3 columns, OR-compressed columns 3-6"));
    // --- 6-bit ---
    infos.push_back(spec_entry("mul6u_acc", exact_spec(6), 0, "exact array"));
    infos.push_back(spec_entry("mul6u_rm4", truncated_spec(6, 4), 2,
                               "truncated 4 columns (paper _rm4)"));

    for (auto& info : infos) {
        const std::string name = info.name;
        order_.push_back(name);
        entries_[name] = Entry{std::move(info), {}, {}, {}, {}};
    }
}

Registry& Registry::instance() {
    static Registry registry;
    return registry;
}

bool Registry::contains(const std::string& name) const {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return entries_.count(name) > 0;
}

const MultiplierInfo& Registry::info(const std::string& name) const {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return entries_.at(name).info;
}

Registry::Entry& Registry::entry(const std::string& name) {
    const auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::out_of_range("unknown multiplier: " + name);
    return it->second;
}

namespace {

/// Directory for caching expensive ALS results across processes; set
/// AMRET_CACHE_DIR to override, or to "0" to disable.
std::string cache_path_for(const MultiplierInfo& info) {
    const char* env = std::getenv("AMRET_CACHE_DIR");
    std::string dir = env ? env : ".amret_cache";
    if (dir == "0" || dir.empty()) return {};
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return {};
    // Fingerprint the synthesis options so stale caches never resurface.
    std::string tag = "_b" + std::to_string(static_cast<int>(info.als_nmed_budget * 1e5));
    if (info.als_wire_substitution) tag += "w";
    if (info.als_zero_preserving) tag += "z";
    return dir + "/" + info.name + tag + ".netlist";
}

} // namespace

namespace {

/// Structural gate run on every circuit entering the registry: topological
/// order (the invariant sim/STA/techmap rely on) and the multiplier port
/// contract. Generators violating it are bugs, cached files violating it
/// are corruption; both must not reach simulation silently.
bool circuit_is_well_formed(const netlist::Netlist& nl, unsigned bits) {
    return nl.is_topologically_ordered() &&
           nl.num_inputs() == 2 * static_cast<std::size_t>(bits) &&
           nl.num_outputs() == 2 * static_cast<std::size_t>(bits);
}

} // namespace

void Registry::build_circuit(Entry& e) {
    if (e.circuit.has_value()) return;
    if (e.info.construction == Construction::kSpec) {
        e.circuit = multgen::build_netlist(e.info.spec);
        if (!circuit_is_well_formed(*e.circuit, e.info.bits))
            throw std::runtime_error("registry: generated netlist for '" +
                                     e.info.name + "' is malformed");
        return;
    }
    const std::string cache = cache_path_for(e.info);
    if (!cache.empty()) {
        if (auto cached = netlist::load_netlist(cache)) {
            if (circuit_is_well_formed(*cached, e.info.bits)) {
                util::log_debug("loaded ", e.info.name, " from cache");
                e.circuit = std::move(*cached);
                return;
            }
            // A corrupt cache is recoverable: drop it and resynthesize.
            util::log_warn("cached netlist for ", e.info.name,
                           " is malformed; resynthesizing");
        }
    }
    util::log_info("synthesizing ", e.info.name, " (ALS, NMED budget ",
                   e.info.als_nmed_budget, ") ...");
    als::AlsOptions options;
    options.nmed_budget = e.info.als_nmed_budget;
    options.enable_wire_substitution = e.info.als_wire_substitution;
    if (e.info.als_zero_preserving)
        options.protected_patterns = als::multiplier_zero_patterns(e.info.bits);
    const auto exact = multgen::build_netlist(multgen::exact_spec(e.info.bits));
    auto result = als::synthesize(exact, options);
    util::log_info("  ", e.info.name, ": ", result.moves, " rewrites, area ",
                   result.area_before_um2, " -> ", result.area_after_um2,
                   " um^2, NMED ", result.metrics.nmed);
    if (!circuit_is_well_formed(result.netlist, e.info.bits))
        throw std::runtime_error("registry: synthesized netlist for '" +
                                 e.info.name + "' is malformed");
    if (!cache.empty()) netlist::save_netlist(result.netlist, cache);
    e.circuit = std::move(result.netlist);
}

const netlist::Netlist& Registry::circuit(const std::string& name) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    Entry& e = entry(name);
    build_circuit(e);
    return *e.circuit;
}

const AppMultLut& Registry::lut(const std::string& name) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    Entry& e = entry(name);
    if (!e.lut.has_value()) {
        if (e.info.construction == Construction::kSpec) {
            // Behavioural path is much cheaper than netlist simulation and is
            // verified equivalent by the test suite.
            const auto& spec = e.info.spec;
            e.lut = AppMultLut(spec.bits, [&spec](std::uint64_t w, std::uint64_t x) {
                return multgen::behavioral(spec, w, x);
            });
        } else {
            build_circuit(e);
            e.lut = AppMultLut::from_netlist(e.info.bits, *e.circuit);
        }
    }
    return *e.lut;
}

const netlist::HardwareReport& Registry::hardware(const std::string& name) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    Entry& e = entry(name);
    if (!e.hardware.has_value()) {
        build_circuit(e);
        e.hardware = netlist::analyze(*e.circuit);
    }
    return *e.hardware;
}

const ErrorMetrics& Registry::error(const std::string& name) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    Entry& e = entry(name);
    if (!e.error.has_value()) e.error = measure_error(lut(name));
    return *e.error;
}

void Registry::register_spec(const std::string& name,
                             const multgen::MultiplierSpec& spec,
                             unsigned default_hws) {
    if (name.empty())
        throw std::invalid_argument("register_spec: multiplier name is empty");
    if (const std::string problem = multgen::validate_spec(spec); !problem.empty())
        throw std::invalid_argument("register_spec('" + name + "'): " + problem);
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    MultiplierInfo info = spec_entry(name, spec, default_hws, "user-defined");
    if (!contains(name)) order_.push_back(name);
    Entry fresh{std::move(info), {}, {}, {}, {}};
    entries_[name] = std::move(fresh);
}

std::string accurate_counterpart(const std::string& name) {
    const auto underscore = name.find('_');
    if (underscore == std::string::npos) return name;
    return name.substr(0, underscore) + "_acc";
}

} // namespace amret::appmult
