/// \file appmult.hpp
/// \brief Lookup-table representation of integer multipliers (Eq. 1) and
///        the ER / NMED / MaxED error metrics (Eq. 2).
///
/// Mirrors the paper's CUDA-LUT method: the full function AM(W, X) of a
/// B-bit unsigned multiplier is precomputed into a 2^(2B)-entry table that
/// both the forward pass and the gradient construction consume.
#pragma once

#include "netlist/netlist.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace amret::appmult {

/// Product lookup table of a B-bit unsigned multiplier.
/// Entry index is (W << B) | X; values are the (possibly approximate)
/// products in [0, 2^(2B)).
class AppMultLut {
public:
    AppMultLut() = default;

    /// Builds from an arbitrary behavioural function over the full domain.
    AppMultLut(unsigned bits, const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& fn);

    /// Builds by exhaustive simulation of a multiplier netlist whose inputs
    /// are w bits then x bits (LSB-first) and whose outputs are the product
    /// bits (LSB-first) — the layout produced by multgen::build_netlist.
    static AppMultLut from_netlist(unsigned bits, const netlist::Netlist& netlist);

    /// Exact multiplier LUT.
    static AppMultLut exact(unsigned bits);

    [[nodiscard]] unsigned bits() const { return bits_; }
    [[nodiscard]] std::uint64_t domain() const { return std::uint64_t{1} << bits_; }
    [[nodiscard]] bool empty() const { return table_.empty(); }

    /// AM(w, x); requires w, x < 2^B.
    [[nodiscard]] std::int64_t operator()(std::uint64_t w, std::uint64_t x) const {
        return table_[(w << bits_) | x];
    }

    /// Raw table access (size 2^(2B)); used by the GEMM kernels.
    [[nodiscard]] const std::vector<std::int32_t>& table() const { return table_; }

    /// Serializes to a small binary file; returns false on I/O error.
    bool save(const std::string& path) const;

    /// Loads a LUT written by save(); returns an empty LUT on failure.
    static AppMultLut load(const std::string& path);

private:
    unsigned bits_ = 0;
    std::vector<std::int32_t> table_;
};

/// Error metrics of Eq. (2), measured against the exact product under a
/// uniform input distribution by full enumeration.
struct ErrorMetrics {
    double error_rate = 0.0;    ///< ER, fraction in [0, 1]
    double nmed = 0.0;          ///< NMED, normalized to 2^(2B) - 1, in [0, 1]
    std::int64_t max_ed = 0;    ///< MaxED, absolute error distance
    double mean_error = 0.0;    ///< signed mean error (bias), unnormalized
};

/// Computes Eq. (2) for \p lut versus the exact B-bit product.
ErrorMetrics measure_error(const AppMultLut& lut);

/// Computes Eq. (2) between two arbitrary product tables of the same width.
ErrorMetrics measure_error(unsigned bits, const std::vector<std::int32_t>& approx,
                           const std::vector<std::int32_t>& reference);

} // namespace amret::appmult
