/// \file error_stats.hpp
/// \brief Structural error analysis of approximate multipliers.
///
/// Eq. (2)'s scalar metrics (ER/NMED/MaxED) do not predict how well a
/// multiplier retrains; this module computes the structural properties that
/// do (see DESIGN.md's zero-preservation finding):
///   - zero-row behaviour: max/mean |AM(0, x)|, |AM(w, 0)| — nonzero values
///     inject constants into every accumulation and resist retraining,
///   - error conditioned on operand magnitude (small operands dominate DNN
///     activations after batch normalization),
///   - signed error distribution (bias, RMS, quantiles),
///   - row monotonicity violations (how stair-like / non-monotone the
///     function is — what the paper's smoothing targets).
#pragma once

#include "appmult/appmult.hpp"

#include <vector>

namespace amret::appmult {

/// Full structural error profile of one multiplier.
struct ErrorProfile {
    unsigned bits = 0;

    // Zero-operand behaviour.
    std::int64_t zero_row_max = 0;  ///< max |AM(0,x)|, |AM(w,0)|
    double zero_row_mean = 0.0;     ///< mean of the same
    bool zero_preserving = false;   ///< true iff zero_row_max == 0

    // Error conditioned on max(|W|,|X|) magnitude buckets (equal-width over
    // the operand range). mean_abs_error_by_magnitude[0] covers the smallest
    // operands.
    std::vector<double> mean_abs_error_by_magnitude;
    std::vector<double> mean_signed_error_by_magnitude;

    // Global signed-error distribution.
    double bias = 0.0;           ///< mean signed error
    double rms_error = 0.0;      ///< sqrt(mean(err^2))
    double q05 = 0.0, q95 = 0.0; ///< 5th / 95th percentile of signed error

    // Fraction of adjacent (x, x+1) row pairs where the AppMult decreases
    // (the exact product never does). High values = rough rows, larger HWS.
    double monotonicity_violations = 0.0;
};

/// Computes the profile by full enumeration. \p buckets controls the
/// magnitude resolution (default 8).
ErrorProfile profile_error(const AppMultLut& lut, int buckets = 8);

/// One-line textual summary for logs and benches.
std::string summarize(const ErrorProfile& profile);

} // namespace amret::appmult
