#include "appmult/error_stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace amret::appmult {

ErrorProfile profile_error(const AppMultLut& lut, int buckets) {
    assert(buckets >= 1);
    ErrorProfile profile;
    profile.bits = lut.bits();
    const std::uint64_t n = lut.domain();

    profile.mean_abs_error_by_magnitude.assign(static_cast<std::size_t>(buckets), 0.0);
    profile.mean_signed_error_by_magnitude.assign(static_cast<std::size_t>(buckets),
                                                  0.0);
    std::vector<std::uint64_t> bucket_counts(static_cast<std::size_t>(buckets), 0);

    std::vector<std::int64_t> errors;
    errors.reserve(static_cast<std::size_t>(n * n));

    double sum_err = 0.0, sum_err2 = 0.0, zero_sum = 0.0;
    std::uint64_t zero_count = 0;
    std::uint64_t violations = 0, adjacents = 0;

    for (std::uint64_t w = 0; w < n; ++w) {
        std::int64_t previous = 0;
        for (std::uint64_t x = 0; x < n; ++x) {
            const std::int64_t approx = lut(w, x);
            const std::int64_t err =
                approx - static_cast<std::int64_t>(w) * static_cast<std::int64_t>(x);
            errors.push_back(err);
            sum_err += static_cast<double>(err);
            sum_err2 += static_cast<double>(err) * static_cast<double>(err);

            if (w == 0 || x == 0) {
                const std::int64_t mag = std::abs(approx);
                profile.zero_row_max = std::max(profile.zero_row_max, mag);
                zero_sum += static_cast<double>(mag);
                ++zero_count;
            }

            const std::uint64_t magnitude = std::max(w, x);
            const std::size_t bucket = static_cast<std::size_t>(
                std::min<std::uint64_t>(static_cast<std::uint64_t>(buckets) - 1,
                                        magnitude * static_cast<std::uint64_t>(buckets) / n));
            profile.mean_abs_error_by_magnitude[bucket] +=
                static_cast<double>(std::abs(err));
            profile.mean_signed_error_by_magnitude[bucket] += static_cast<double>(err);
            ++bucket_counts[bucket];

            if (x > 0) {
                ++adjacents;
                if (approx < previous) ++violations;
            }
            previous = approx;
        }
    }

    const double total = static_cast<double>(n) * static_cast<double>(n);
    profile.zero_row_mean = zero_count ? zero_sum / static_cast<double>(zero_count) : 0.0;
    profile.zero_preserving = profile.zero_row_max == 0;
    profile.bias = sum_err / total;
    profile.rms_error = std::sqrt(sum_err2 / total);
    profile.monotonicity_violations =
        adjacents ? static_cast<double>(violations) / static_cast<double>(adjacents)
                  : 0.0;

    for (std::size_t b = 0; b < static_cast<std::size_t>(buckets); ++b) {
        if (bucket_counts[b] == 0) continue;
        profile.mean_abs_error_by_magnitude[b] /= static_cast<double>(bucket_counts[b]);
        profile.mean_signed_error_by_magnitude[b] /=
            static_cast<double>(bucket_counts[b]);
    }

    const auto q = [&](double fraction) {
        const auto pos = static_cast<std::size_t>(
            fraction * static_cast<double>(errors.size() - 1));
        std::nth_element(errors.begin(),
                         errors.begin() + static_cast<std::ptrdiff_t>(pos),
                         errors.end());
        return static_cast<double>(errors[pos]);
    };
    profile.q05 = q(0.05);
    profile.q95 = q(0.95);
    return profile;
}

std::string summarize(const ErrorProfile& profile) {
    std::ostringstream os;
    os << "bits=" << profile.bits << " zero_row_max=" << profile.zero_row_max
       << (profile.zero_preserving ? " (zero-preserving)" : " (NOT zero-preserving)")
       << " bias=" << profile.bias << " rms=" << profile.rms_error
       << " err[q05,q95]=[" << profile.q05 << "," << profile.q95 << "]"
       << " mono_violations=" << profile.monotonicity_violations;
    return os.str();
}

} // namespace amret::appmult
