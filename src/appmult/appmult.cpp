#include "appmult/appmult.hpp"

#include "netlist/sim.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace amret::appmult {

AppMultLut::AppMultLut(unsigned bits,
                       const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& fn)
    : bits_(bits) {
    assert(bits >= 2 && bits <= 10);
    const std::uint64_t n = std::uint64_t{1} << bits;
    table_.resize(n * n);
    for (std::uint64_t w = 0; w < n; ++w) {
        for (std::uint64_t x = 0; x < n; ++x) {
            table_[(w << bits_) | x] = static_cast<std::int32_t>(fn(w, x));
        }
    }
}

AppMultLut AppMultLut::from_netlist(unsigned bits, const netlist::Netlist& netlist) {
    assert(netlist.num_inputs() == 2 * bits);
    assert(netlist.num_outputs() == 2 * bits);
    const auto outputs = netlist::eval_all_patterns(netlist);
    AppMultLut lut;
    lut.bits_ = bits;
    const std::uint64_t n = std::uint64_t{1} << bits;
    lut.table_.resize(n * n);
    // Simulation pattern p carries W in its low bits and X in its high bits
    // (inputs were added W-first); LUT index is (W << B) | X.
    for (std::uint64_t p = 0; p < n * n; ++p) {
        const std::uint64_t w = p & (n - 1);
        const std::uint64_t x = p >> bits;
        lut.table_[(w << bits) | x] = static_cast<std::int32_t>(outputs[p]);
    }
    return lut;
}

AppMultLut AppMultLut::exact(unsigned bits) {
    return AppMultLut(bits, [](std::uint64_t w, std::uint64_t x) { return w * x; });
}

bool AppMultLut::save(const std::string& path) const {
    std::ofstream f(path, std::ios::binary);
    if (!f) return false;
    const char magic[8] = {'A', 'M', 'L', 'U', 'T', '1', 0, 0};
    f.write(magic, sizeof(magic));
    const std::uint32_t b = bits_;
    f.write(reinterpret_cast<const char*>(&b), sizeof(b));
    f.write(reinterpret_cast<const char*>(table_.data()),
            static_cast<std::streamsize>(table_.size() * sizeof(std::int32_t)));
    return static_cast<bool>(f);
}

AppMultLut AppMultLut::load(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    AppMultLut lut;
    if (!f) return lut;
    char magic[8];
    f.read(magic, sizeof(magic));
    if (!f || std::string(magic, 5) != "AMLUT") return lut;
    std::uint32_t b = 0;
    f.read(reinterpret_cast<char*>(&b), sizeof(b));
    if (!f || b < 2 || b > 10) return lut;
    const std::uint64_t n = std::uint64_t{1} << b;
    std::vector<std::int32_t> table(n * n);
    f.read(reinterpret_cast<char*>(table.data()),
           static_cast<std::streamsize>(table.size() * sizeof(std::int32_t)));
    if (!f) return lut;
    lut.bits_ = b;
    lut.table_ = std::move(table);
    return lut;
}

ErrorMetrics measure_error(unsigned bits, const std::vector<std::int32_t>& approx,
                           const std::vector<std::int32_t>& reference) {
    assert(approx.size() == reference.size());
    const std::uint64_t total = approx.size();
    const double max_product = std::ldexp(1.0, static_cast<int>(2 * bits)) - 1.0;

    std::uint64_t mismatches = 0;
    double sum_abs = 0.0;
    double sum_signed = 0.0;
    std::int64_t max_ed = 0;
    for (std::uint64_t i = 0; i < total; ++i) {
        const std::int64_t diff =
            static_cast<std::int64_t>(approx[i]) - static_cast<std::int64_t>(reference[i]);
        if (diff != 0) ++mismatches;
        const std::int64_t ad = diff < 0 ? -diff : diff;
        sum_abs += static_cast<double>(ad);
        sum_signed += static_cast<double>(diff);
        if (ad > max_ed) max_ed = ad;
    }

    ErrorMetrics m;
    m.error_rate = static_cast<double>(mismatches) / static_cast<double>(total);
    m.nmed = sum_abs / static_cast<double>(total) / max_product;
    m.max_ed = max_ed;
    m.mean_error = sum_signed / static_cast<double>(total);
    return m;
}

ErrorMetrics measure_error(const AppMultLut& lut) {
    const AppMultLut exact = AppMultLut::exact(lut.bits());
    return measure_error(lut.bits(), lut.table(), exact.table());
}

} // namespace amret::appmult
