#include "appmult/signed_mult.hpp"

#include <cassert>
#include <cmath>

namespace amret::appmult {

SignedAppMultLut::SignedAppMultLut(
    unsigned bits, const std::function<std::int64_t(std::int64_t, std::int64_t)>& fn)
    : bits_(bits) {
    assert(bits >= 2 && bits <= 10);
    const std::int64_t n = std::int64_t{1} << bits;
    table_.resize(static_cast<std::size_t>(n * n));
    for (std::int64_t w = lo(); w <= hi(); ++w) {
        for (std::int64_t x = lo(); x <= hi(); ++x) {
            table_[static_cast<std::size_t>((w - lo()) * n + (x - lo()))] =
                static_cast<std::int32_t>(fn(w, x));
        }
    }
}

SignedAppMultLut SignedAppMultLut::from_unsigned(const AppMultLut& unsigned_lut) {
    const unsigned bits = unsigned_lut.bits();
    const std::int64_t mag_max =
        static_cast<std::int64_t>(unsigned_lut.domain()) - 1;
    return SignedAppMultLut(bits, [&](std::int64_t w, std::int64_t x) {
        const std::int64_t aw = std::min(std::abs(w), mag_max);
        const std::int64_t ax = std::min(std::abs(x), mag_max);
        const std::int64_t mag = unsigned_lut(static_cast<std::uint64_t>(aw),
                                              static_cast<std::uint64_t>(ax));
        return ((w < 0) != (x < 0)) ? -mag : mag;
    });
}

SignedAppMultLut SignedAppMultLut::exact(unsigned bits) {
    return SignedAppMultLut(bits,
                            [](std::int64_t w, std::int64_t x) { return w * x; });
}

std::int64_t SignedAppMultLut::operator()(std::int64_t w, std::int64_t x) const {
    assert(w >= lo() && w <= hi() && x >= lo() && x <= hi());
    const std::int64_t n = std::int64_t{1} << bits_;
    return table_[static_cast<std::size_t>((w - lo()) * n + (x - lo()))];
}

std::function<double(std::int64_t, std::int64_t)> SignedAppMultLut::as_function() const {
    // Copy the table into the closure so the function outlives the LUT.
    const auto table = table_;
    const unsigned bits = bits_;
    const std::int64_t low = lo();
    const std::int64_t n = std::int64_t{1} << bits;
    return [table, low, n](std::int64_t w, std::int64_t x) {
        return static_cast<double>(
            table[static_cast<std::size_t>((w - low) * n + (x - low))]);
    };
}

AppMultLut to_unsigned_equivalent(const SignedAppMultLut& lut) {
    const unsigned bits = lut.bits();
    const std::int64_t zero = std::int64_t{1} << (bits - 1);
    return AppMultLut(bits, [&](std::uint64_t cw, std::uint64_t cx) {
        const std::int64_t vw = static_cast<std::int64_t>(cw) - zero;
        const std::int64_t vx = static_cast<std::int64_t>(cx) - zero;
        const std::int64_t value = lut(vw, vx) +
                                   zero * static_cast<std::int64_t>(cw) +
                                   zero * static_cast<std::int64_t>(cx) - zero * zero;
        return static_cast<std::uint64_t>(value);
    });
}

ErrorMetrics measure_error(const SignedAppMultLut& lut) {
    const std::int64_t n = std::int64_t{1} << lut.bits();
    const double max_product = std::ldexp(1.0, static_cast<int>(2 * lut.bits() - 2));

    ErrorMetrics m;
    double sum_abs = 0.0, sum_signed = 0.0;
    std::uint64_t mismatches = 0;
    std::int64_t max_ed = 0;
    for (std::int64_t w = lut.lo(); w <= lut.hi(); ++w) {
        for (std::int64_t x = lut.lo(); x <= lut.hi(); ++x) {
            const std::int64_t diff = lut(w, x) - w * x;
            if (diff != 0) ++mismatches;
            const std::int64_t ad = diff < 0 ? -diff : diff;
            sum_abs += static_cast<double>(ad);
            sum_signed += static_cast<double>(diff);
            if (ad > max_ed) max_ed = ad;
        }
    }
    const double total = static_cast<double>(n) * static_cast<double>(n);
    m.error_rate = static_cast<double>(mismatches) / total;
    m.nmed = sum_abs / total / max_product;
    m.max_ed = max_ed;
    m.mean_error = sum_signed / total;
    return m;
}

} // namespace amret::appmult
