/// \file signed_mult.hpp
/// \brief Signed approximate multipliers (the paper's Sec. III note that the
///        method "can be easily extended to signed AppMults").
///
/// A SignedAppMultLut tabulates a function over the two's-complement domain
/// [-2^(B-1), 2^(B-1)); the difference-based gradient is obtained through
/// core::build_difference_grad_generic over the same domain. Two standard
/// constructions are provided: wrapping an unsigned AppMult in sign/magnitude
/// logic, and tabulating an arbitrary signed behavioural function.
#pragma once

#include "appmult/appmult.hpp"

#include <cstdint>
#include <functional>
#include <vector>

namespace amret::appmult {

/// Product lookup table over a signed operand domain.
class SignedAppMultLut {
public:
    SignedAppMultLut() = default;

    /// Tabulates \p fn over [-2^(B-1), 2^(B-1)) x [-2^(B-1), 2^(B-1)).
    SignedAppMultLut(unsigned bits,
                     const std::function<std::int64_t(std::int64_t, std::int64_t)>& fn);

    /// Sign/magnitude wrapper: SM(w, x) = sign(w*x) * AM(|w|, |x|), with the
    /// magnitudes clamped into the unsigned multiplier's domain. This is the
    /// standard way to reuse an unsigned AppMult in signed datapaths.
    static SignedAppMultLut from_unsigned(const AppMultLut& unsigned_lut);

    /// Exact signed multiplier.
    static SignedAppMultLut exact(unsigned bits);

    [[nodiscard]] unsigned bits() const { return bits_; }
    [[nodiscard]] bool empty() const { return table_.empty(); }
    [[nodiscard]] std::int64_t lo() const { return -(std::int64_t{1} << (bits_ - 1)); }
    [[nodiscard]] std::int64_t hi() const { return (std::int64_t{1} << (bits_ - 1)) - 1; }

    /// SM(w, x); requires lo() <= w, x <= hi().
    [[nodiscard]] std::int64_t operator()(std::int64_t w, std::int64_t x) const;

    [[nodiscard]] const std::vector<std::int32_t>& table() const { return table_; }

    /// Behavioural function view (for the generic gradient builder).
    [[nodiscard]] std::function<double(std::int64_t, std::int64_t)> as_function() const;

private:
    unsigned bits_ = 0;
    std::vector<std::int32_t> table_;
};

/// Error metrics of a signed AppMult versus the exact signed product,
/// uniform over the full two's-complement domain (signed analogue of Eq. 2;
/// NMED normalized by the maximum |product| = 2^(2B-2)).
ErrorMetrics measure_error(const SignedAppMultLut& lut);

/// Bridges a signed multiplier into the (unsigned, affine) training stack.
///
/// With symmetric quantization the affine code of a signed value v is
/// c = v + Z with Z = 2^(B-1). The quantized layers compute
/// y = s_w s_x (Σ AM(c_w, c_x) − Z_x Σc_w − Z_w Σc_x + K Z_w Z_x), which
/// equals Σ s_w s_x · SM(v_w, v_x) exactly when
///   AM(c_w, c_x) := SM(c_w − Z, c_x − Z) + Z c_w + Z c_x − Z².
/// This function tabulates that equivalent unsigned-indexed LUT, so any
/// signed AppMult drops into ApproxConv2d/ApproxLinear unchanged (use
/// core::build_difference_grad on the result for the paper's gradient).
AppMultLut to_unsigned_equivalent(const SignedAppMultLut& lut);

} // namespace amret::appmult
