/// \file registry.hpp
/// \brief Named multiplier registry reproducing the paper's Table I lineup.
///
/// The paper evaluates 17 unsigned multipliers: exact 8/7/6-bit references,
/// simple column-truncated designs (`_rmk`), EvoApproxLib designs, and two
/// pairs synthesized by an approximate-logic-synthesis tool (`_syn`).
/// EvoApproxLib's RTL is not available offline, so each EvoApprox name maps
/// to a surrogate from our parametric families chosen to match that design's
/// error regime (NMED/ER/MaxED shape); the `_rmk` designs are exact
/// reproductions of the paper's definition and the `_syn` designs are
/// genuinely synthesized by `amret::als`. See DESIGN.md section 5.
#pragma once

#include "appmult/appmult.hpp"
#include "multgen/multgen.hpp"
#include "netlist/analysis.hpp"

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace amret::appmult {

/// How a registry entry's netlist is obtained.
enum class Construction {
    kSpec, ///< directly from a multgen::MultiplierSpec
    kAls,  ///< approximate logic synthesis on the exact netlist
};

/// Static description of one named multiplier.
struct MultiplierInfo {
    std::string name;
    unsigned bits = 8;
    bool approximate = true;
    Construction construction = Construction::kSpec;
    multgen::MultiplierSpec spec;     ///< for kSpec (and the ALS start point)
    double als_nmed_budget = 0.0;     ///< for kAls
    bool als_wire_substitution = true;///< for kAls (differentiates syn1/syn2)
    bool als_zero_preserving = true;  ///< for kAls: protect AM(0,x)/AM(w,0)
    unsigned default_hws = 0;         ///< Table I's selected HWS (0 = N/A)
    std::string family;               ///< human-readable construction note
};

/// Lazy cache of netlists, LUTs and hardware reports for the named set.
/// Thread-safe: lazy builders run under an internal lock, so concurrent
/// lookups (e.g. from runtime::parallel_for chunks) build each artifact
/// exactly once. References stay valid until register_spec replaces that
/// entry; don't hold one across a concurrent re-registration of its name.
class Registry {
public:
    /// The process-wide registry with the paper's Table I names.
    static Registry& instance();

    /// All names in Table I order.
    [[nodiscard]] const std::vector<std::string>& names() const { return order_; }

    /// True if \p name is registered.
    [[nodiscard]] bool contains(const std::string& name) const;

    /// Static info; throws std::out_of_range for unknown names.
    [[nodiscard]] const MultiplierInfo& info(const std::string& name) const;

    /// Product LUT (built on first use, then cached).
    const AppMultLut& lut(const std::string& name);

    /// Gate-level netlist (built on first use, then cached).
    const netlist::Netlist& circuit(const std::string& name);

    /// Area/delay/power report (built on first use, then cached).
    const netlist::HardwareReport& hardware(const std::string& name);

    /// Error metrics vs the exact multiplier of the same width (cached).
    const ErrorMetrics& error(const std::string& name);

    /// Registers a user-defined multiplier built from \p spec; replaces any
    /// existing entry with the same name and clears its caches. Throws
    /// std::invalid_argument when the name is empty or the spec violates its
    /// structural bounds (multgen::validate_spec); lazily built circuits are
    /// additionally structure-checked and a malformed generator result (or a
    /// corrupt cache file that cannot be resynthesized) raises
    /// std::runtime_error instead of reaching simulation.
    void register_spec(const std::string& name, const multgen::MultiplierSpec& spec,
                       unsigned default_hws);

private:
    Registry();

    struct Entry {
        MultiplierInfo info;
        std::optional<netlist::Netlist> circuit;
        std::optional<AppMultLut> lut;
        std::optional<netlist::HardwareReport> hardware;
        std::optional<ErrorMetrics> error;
    };

    Entry& entry(const std::string& name);
    void build_circuit(Entry& e);

    /// Recursive because lazy builders call each other (error() -> lut()).
    mutable std::recursive_mutex mutex_;
    std::vector<std::string> order_;
    std::map<std::string, Entry> entries_;
};

/// Name of the accurate multiplier with the same bit width as \p name
/// (e.g. "mul7u_06Q" -> "mul7u_acc").
std::string accurate_counterpart(const std::string& name);

} // namespace amret::appmult
