#include "data/dataset.hpp"

#include "util/logging.hpp"

#include <cassert>
#include <cmath>
#include <fstream>
#include <numbers>

namespace amret::data {

namespace {

/// Smooth random field: sum of low-frequency cosine waves.
struct WaveField {
    struct Wave {
        double fy, fx, phase, amp;
    };
    std::vector<Wave> waves;

    static WaveField random(int count, util::Rng& rng) {
        WaveField f;
        for (int i = 0; i < count; ++i) {
            f.waves.push_back(Wave{rng.uniform(0.5, 2.5), rng.uniform(0.5, 2.5),
                                   rng.uniform(0.0, 2.0 * std::numbers::pi),
                                   rng.uniform(0.4, 1.0)});
        }
        return f;
    }

    [[nodiscard]] double at(double y, double x) const {
        double v = 0.0;
        for (const auto& w : waves) {
            v += w.amp * std::cos(2.0 * std::numbers::pi * (w.fy * y + w.fx * x) +
                                  w.phase);
        }
        return v;
    }
};

void synthesize_split(Dataset& out, std::int64_t samples,
                      const std::vector<std::vector<WaveField>>& prototypes,
                      const SyntheticConfig& config, util::Rng& rng) {
    out.channels = config.channels;
    out.height = config.height;
    out.width = config.width;
    out.num_classes = config.num_classes;
    out.images.resize(static_cast<std::size_t>(samples * out.sample_numel()));
    out.labels.resize(static_cast<std::size_t>(samples));

    const std::int64_t h = config.height, w = config.width;
    for (std::int64_t s = 0; s < samples; ++s) {
        const int label = static_cast<int>(rng.uniform_u64(
            static_cast<std::uint64_t>(config.num_classes)));
        out.labels[static_cast<std::size_t>(s)] = label;

        const int shift_y = static_cast<int>(
            rng.uniform_int(-config.max_shift, config.max_shift));
        const int shift_x = static_cast<int>(
            rng.uniform_int(-config.max_shift, config.max_shift));
        const float gain =
            1.0f + static_cast<float>(rng.uniform(-config.gain_jitter,
                                                  config.gain_jitter));

        float* img = out.images.data() + s * out.sample_numel();
        for (std::int64_t c = 0; c < config.channels; ++c) {
            const WaveField& field =
                prototypes[static_cast<std::size_t>(label)][static_cast<std::size_t>(c)];
            for (std::int64_t y = 0; y < h; ++y) {
                for (std::int64_t x = 0; x < w; ++x) {
                    // Circular shift keeps all class energy in the frame.
                    const double yy =
                        static_cast<double>(((y + shift_y) % h + h) % h) /
                        static_cast<double>(h);
                    const double xx =
                        static_cast<double>(((x + shift_x) % w + w) % w) /
                        static_cast<double>(w);
                    const double base = field.at(yy, xx);
                    const double noisy =
                        gain * base + config.noise_stddev * rng.normal();
                    img[(c * h + y) * w + x] = static_cast<float>(noisy);
                }
            }
        }
    }
}

} // namespace

DatasetPair make_synthetic(const SyntheticConfig& config) {
    assert(config.num_classes >= 2);
    util::Rng rng(config.seed);

    std::vector<std::vector<WaveField>> prototypes(
        static_cast<std::size_t>(config.num_classes));
    for (auto& per_channel : prototypes) {
        per_channel.reserve(static_cast<std::size_t>(config.channels));
        for (std::int64_t c = 0; c < config.channels; ++c)
            per_channel.push_back(WaveField::random(config.waves_per_class, rng));
    }

    DatasetPair pair;
    synthesize_split(pair.train, config.train_samples, prototypes, config, rng);
    synthesize_split(pair.test, config.test_samples, prototypes, config, rng);
    return pair;
}

Dataset load_cifar_binary(const std::vector<std::string>& paths, int num_classes,
                          bool cifar100) {
    Dataset out;
    out.channels = 3;
    out.height = 32;
    out.width = 32;
    out.num_classes = num_classes;

    const std::size_t row_bytes = cifar100 ? (2 + 3072) : (1 + 3072);
    for (const auto& path : paths) {
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            util::log_warn("cifar: cannot open ", path);
            return Dataset{};
        }
        std::vector<unsigned char> row(row_bytes);
        while (f.read(reinterpret_cast<char*>(row.data()),
                      static_cast<std::streamsize>(row_bytes))) {
            // CIFAR-100 rows carry [coarse, fine]; we use the fine label.
            const int label = cifar100 ? row[1] : row[0];
            if (label < 0 || label >= num_classes) return Dataset{};
            out.labels.push_back(label);
            const unsigned char* pixels = row.data() + (cifar100 ? 2 : 1);
            for (std::size_t i = 0; i < 3072; ++i) {
                // Normalize to roughly zero-mean unit-range floats.
                out.images.push_back(
                    (static_cast<float>(pixels[i]) / 255.0f - 0.5f) * 2.0f);
            }
        }
    }
    return out;
}

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle,
                       std::uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), shuffle_(shuffle), rng_(seed) {
    assert(batch_size_ >= 1);
    order_.resize(static_cast<std::size_t>(dataset_.size()));
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
}

std::int64_t DataLoader::num_batches() const {
    return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
    cursor_ = 0;
    if (shuffle_) rng_.shuffle(order_);
}

void DataLoader::augment_sample(float* sample) {
    const std::int64_t c = dataset_.channels, h = dataset_.height, w = dataset_.width;
    if (augmentation_.hflip_prob > 0.0f &&
        rng_.bernoulli(augmentation_.hflip_prob)) {
        for (std::int64_t ch = 0; ch < c; ++ch)
            for (std::int64_t y = 0; y < h; ++y) {
                float* row = sample + (ch * h + y) * w;
                for (std::int64_t x = 0; x < w / 2; ++x)
                    std::swap(row[x], row[w - 1 - x]);
            }
    }
    if (augmentation_.max_shift > 0) {
        const int sy = static_cast<int>(
            rng_.uniform_int(-augmentation_.max_shift, augmentation_.max_shift));
        const int sx = static_cast<int>(
            rng_.uniform_int(-augmentation_.max_shift, augmentation_.max_shift));
        if (sy != 0 || sx != 0) {
            std::vector<float> shifted(static_cast<std::size_t>(c * h * w));
            for (std::int64_t ch = 0; ch < c; ++ch)
                for (std::int64_t y = 0; y < h; ++y)
                    for (std::int64_t x = 0; x < w; ++x) {
                        const std::int64_t yy = ((y + sy) % h + h) % h;
                        const std::int64_t xx = ((x + sx) % w + w) % w;
                        shifted[static_cast<std::size_t>((ch * h + y) * w + x)] =
                            sample[(ch * h + yy) * w + xx];
                    }
            std::copy(shifted.begin(), shifted.end(), sample);
        }
    }
    if (augmentation_.noise_stddev > 0.0f) {
        for (std::int64_t i = 0; i < c * h * w; ++i)
            sample[i] += static_cast<float>(
                rng_.normal(0.0, augmentation_.noise_stddev));
    }
}

bool DataLoader::next(Batch& out) {
    if (cursor_ >= dataset_.size()) return false;
    const std::int64_t n =
        std::min<std::int64_t>(batch_size_, dataset_.size() - cursor_);
    out.images = tensor::Tensor(tensor::Shape{n, dataset_.channels, dataset_.height,
                                              dataset_.width});
    out.labels.resize(static_cast<std::size_t>(n));
    const std::int64_t sample = dataset_.sample_numel();
    for (std::int64_t i = 0; i < n; ++i) {
        const std::size_t src = order_[static_cast<std::size_t>(cursor_ + i)];
        const float* from =
            dataset_.images.data() + static_cast<std::int64_t>(src) * sample;
        float* to = out.images.data() + i * sample;
        std::copy(from, from + sample, to);
        if (augmentation_.enabled()) augment_sample(to);
        out.labels[static_cast<std::size_t>(i)] =
            dataset_.labels[src];
    }
    cursor_ += n;
    return true;
}

} // namespace amret::data
