#include "data/shapes.hpp"

#include <cassert>
#include <cmath>

namespace amret::data {

namespace {

/// Shape catalog: returns coverage in [0, 1] of pixel (y, x) by the shape
/// with the given half-size, all in centered unit coordinates.
enum class ShapeKind {
    kSquare,
    kCircle,
    kCross,
    kTriangle,
    kRing,
    kHBar,
    kVBar,
    kDiamond,
};
constexpr int kNumShapes = 8;

bool covered(ShapeKind kind, double y, double x, double half) {
    const double ay = std::abs(y), ax = std::abs(x);
    switch (kind) {
        case ShapeKind::kSquare: return ay <= half && ax <= half;
        case ShapeKind::kCircle: return y * y + x * x <= half * half;
        case ShapeKind::kCross:
            return (ay <= half * 0.35 && ax <= half) ||
                   (ax <= half * 0.35 && ay <= half);
        case ShapeKind::kTriangle:
            return y >= -half && y <= half && ax <= (y + half) / 2.0;
        case ShapeKind::kRing: {
            const double r2 = y * y + x * x;
            return r2 <= half * half && r2 >= half * half * 0.3;
        }
        case ShapeKind::kHBar: return ay <= half * 0.4 && ax <= half;
        case ShapeKind::kVBar: return ax <= half * 0.4 && ay <= half;
        case ShapeKind::kDiamond: return ay + ax <= half;
    }
    return false;
}

void render_split(Dataset& out, std::int64_t samples, const ShapesConfig& config,
                  util::Rng& rng) {
    out.channels = 3;
    out.height = config.height;
    out.width = config.width;
    out.num_classes = config.num_classes;
    out.images.resize(static_cast<std::size_t>(samples * out.sample_numel()));
    out.labels.resize(static_cast<std::size_t>(samples));

    const double base_half = 0.55; // relative to the half image size
    for (std::int64_t s = 0; s < samples; ++s) {
        const int label = static_cast<int>(
            rng.uniform_u64(static_cast<std::uint64_t>(config.num_classes)));
        out.labels[static_cast<std::size_t>(s)] = label;
        const auto kind = static_cast<ShapeKind>(label % kNumShapes);
        // Classes beyond the catalog reuse a shape at reduced size.
        const double class_scale = 1.0 - 0.35 * static_cast<double>(label / kNumShapes);

        const double half =
            base_half * class_scale *
            (1.0 + rng.uniform(-config.scale_jitter, config.scale_jitter));
        const double cy = rng.uniform_int(-config.max_shift, config.max_shift);
        const double cx = rng.uniform_int(-config.max_shift, config.max_shift);
        // Random saturated colour against a dark background.
        float colour[3];
        for (auto& ch : colour) ch = static_cast<float>(rng.uniform(0.4, 1.0));

        float* img = out.images.data() + s * out.sample_numel();
        const double hh = static_cast<double>(config.height) / 2.0;
        const double hw = static_cast<double>(config.width) / 2.0;
        for (std::int64_t c = 0; c < 3; ++c) {
            for (std::int64_t y = 0; y < config.height; ++y) {
                for (std::int64_t x = 0; x < config.width; ++x) {
                    const double uy = (static_cast<double>(y) - hh + 0.5 - cy) / hh;
                    const double ux = (static_cast<double>(x) - hw + 0.5 - cx) / hw;
                    const bool on = covered(kind, uy, ux, half);
                    const double value = (on ? colour[c] : -0.6) +
                                         config.noise_stddev * rng.normal();
                    img[(c * config.height + y) * config.width + x] =
                        static_cast<float>(value);
                }
            }
        }
    }
}

} // namespace

DatasetPair make_shapes(const ShapesConfig& config) {
    assert(config.num_classes >= 2);
    util::Rng rng(config.seed);
    DatasetPair pair;
    render_split(pair.train, config.train_samples, config, rng);
    render_split(pair.test, config.test_samples, config, rng);
    return pair;
}

} // namespace amret::data
