/// \file shapes.hpp
/// \brief Second synthetic task: rendered geometric shapes.
///
/// Complements the wave-field generator with a task whose classes are
/// *spatially structured objects* (filled squares, circles, crosses,
/// triangles, rings, bars, ...) rather than textures: closer in character
/// to object classification, harder under shift, and useful for checking
/// that conclusions do not depend on one synthetic distribution.
#pragma once

#include "data/dataset.hpp"

namespace amret::data {

/// Configuration for the shapes generator. Classes cycle through the shape
/// catalog (8 distinct shapes); with num_classes > 8 the same shape recurs
/// at a different scale.
struct ShapesConfig {
    int num_classes = 8;
    std::int64_t height = 12;
    std::int64_t width = 12;
    std::int64_t train_samples = 800;
    std::int64_t test_samples = 400;
    float noise_stddev = 0.25f;
    int max_shift = 2;       ///< object translation range (pixels)
    float scale_jitter = 0.2f; ///< relative size jitter
    std::uint64_t seed = 7;
};

/// Generates the shapes classification task. Images have 3 channels: the
/// shape is drawn with a per-sample random colour on a dark background.
DatasetPair make_shapes(const ShapesConfig& config);

} // namespace amret::data
