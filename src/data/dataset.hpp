/// \file dataset.hpp
/// \brief Image classification datasets and the batching data loader.
///
/// The paper trains on CIFAR-10/100, which cannot be downloaded offline.
/// The primary substitute is a synthetic class-structured image generator:
/// each class has a smooth random prototype (a sum of low-frequency cosine
/// waves per channel); samples are the prototype plus Gaussian pixel noise,
/// a random circular shift, and a random gain — enough structure that a CNN
/// must learn real spatial features, while remaining learnable at tiny
/// scales. A reader for the genuine CIFAR binary format is also provided
/// and is used automatically when the files are present.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace amret::data {

/// One in-memory split (images are stored normalized, NCHW per sample).
struct Dataset {
    std::int64_t channels = 3;
    std::int64_t height = 0;
    std::int64_t width = 0;
    int num_classes = 0;
    std::vector<float> images; ///< size() == samples * channels * h * w
    std::vector<int> labels;

    [[nodiscard]] std::int64_t size() const {
        return static_cast<std::int64_t>(labels.size());
    }
    [[nodiscard]] std::int64_t sample_numel() const {
        return channels * height * width;
    }
};

/// Configuration for the synthetic generator.
struct SyntheticConfig {
    int num_classes = 10;
    std::int64_t height = 12;
    std::int64_t width = 12;
    std::int64_t channels = 3;
    std::int64_t train_samples = 800;
    std::int64_t test_samples = 400;
    int waves_per_class = 4;     ///< cosine components per prototype channel
    float noise_stddev = 0.35f;  ///< per-pixel Gaussian noise
    int max_shift = 2;           ///< circular shift range (pixels)
    float gain_jitter = 0.15f;   ///< multiplicative brightness jitter
    std::uint64_t seed = 42;
};

/// Train/test pair.
struct DatasetPair {
    Dataset train;
    Dataset test;
};

/// Generates the synthetic classification task described above.
DatasetPair make_synthetic(const SyntheticConfig& config);

/// Reads CIFAR-10/100 binary batches (3072-byte RGB rows). For CIFAR-100
/// pass coarse_labels=false to use the fine label byte. Returns an empty
/// dataset when the file cannot be read.
Dataset load_cifar_binary(const std::vector<std::string>& paths, int num_classes,
                          bool cifar100);

/// Mini-batch view materialized as tensors.
struct Batch {
    tensor::Tensor images; ///< (N, C, H, W)
    std::vector<int> labels;
};

/// On-the-fly training augmentation applied per sample by the DataLoader.
struct Augmentation {
    float hflip_prob = 0.0f;    ///< probability of mirroring horizontally
    int max_shift = 0;          ///< random circular shift in +-pixels
    float noise_stddev = 0.0f;  ///< additive Gaussian pixel noise

    [[nodiscard]] bool enabled() const {
        return hflip_prob > 0.0f || max_shift > 0 || noise_stddev > 0.0f;
    }
};

/// Shuffling mini-batch iterator over a Dataset.
class DataLoader {
public:
    DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle,
               std::uint64_t seed);

    /// Enables per-sample augmentation (training loaders only).
    void set_augmentation(const Augmentation& augmentation) {
        augmentation_ = augmentation;
    }

    /// Number of batches per epoch (last partial batch included).
    [[nodiscard]] std::int64_t num_batches() const;

    /// Reshuffles (if enabled) and resets the cursor.
    void start_epoch();

    /// Fetches the next batch; returns false at epoch end.
    bool next(Batch& out);

private:
    void augment_sample(float* sample);

    const Dataset& dataset_;
    std::int64_t batch_size_;
    bool shuffle_;
    util::Rng rng_;
    std::vector<std::size_t> order_;
    std::int64_t cursor_ = 0;
    Augmentation augmentation_;
};

} // namespace amret::data
