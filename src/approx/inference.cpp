#include "approx/inference.hpp"

#include "kernels/im2col.hpp"
#include "kernels/layout.hpp"
#include "kernels/lut_kernels.hpp"
#include "nn/loss.hpp"
#include "runtime/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace amret::approx {

namespace tune = kernels::tune;

// ---------------------------------------------------------------- ops ----

struct IntInferenceEngine::Op {
    virtual ~Op() = default;
    /// \p ws is the engine's scratch arena, reset before each op.
    virtual QTensor run(const QTensor& in, kernels::Workspace& ws) const = 0;
    /// Float twin used during calibration; updates recorded ranges.
    virtual tensor::Tensor run_float(const tensor::Tensor& in) = 0;
};

namespace {

struct ConvOp final : IntInferenceEngine::Op {
    // Static configuration.
    std::shared_ptr<const appmult::AppMultLut> lut;
    std::string mult_name; ///< assignment identity metadata ("" = ad-hoc)
    unsigned mult_hws = 0;
    unsigned bits = 8;
    std::int64_t in_ch = 0, out_ch = 0, kernel = 3, stride = 1, pad = 1;
    bool relu = false;
    tensor::Tensor folded_w; // (O, C, K, K) float, BN folded
    tensor::Tensor folded_b; // (O)

    // Calibration state.
    float out_lo = 0.0f, out_hi = 0.0f;
    bool calibrated = false;

    // Compiled integer parameters (filled by finalize()).
    std::vector<std::uint16_t> wq;
    std::vector<std::int64_t> sum_w; ///< hoisted weight row sums (static)
    std::vector<std::int32_t> bias_int;
    std::vector<std::int64_t> bias_raw; ///< pre-narrowing bias, for the analyzer
    std::int32_t zero_w = 0;
    float out_scale = 1.0f;
    std::int32_t out_zero = 0;
    std::int32_t out_qmax = 255; ///< activations live in [0, 2^act_bits - 1]
    FixedPointMultiplier requant;
    float in_scale = 1.0f; // fixed at finalize from the previous op
    std::int32_t in_zero = 0;

    // Blocked layout (the default; set by the engine before finalize()).
    // finalize() re-packs the same wq codes into pre-shifted panels once;
    // run() then fuses im2col straight into activation panel production and
    // feeds lut_gemm_blocked_tile. wq_panels stays empty in scalar mode,
    // which keeps the row-major oracle path.
    kernels::LayoutMode layout = kernels::LayoutMode::kBlocked;
    kernels::PanelPlan wplan;
    std::vector<std::uint32_t> wq_panels;

    tensor::Tensor run_float(const tensor::Tensor& x) override {
        tensor::ConvGeom geom{x.dim(0), in_ch, x.dim(2), x.dim(3), kernel, stride, pad};
        const tensor::Tensor cols = kernels::im2col(x, geom);
        tensor::Tensor po = tensor::matmul_nt(
            cols, folded_w.reshaped(tensor::Shape{out_ch, geom.patch()}));
        for (std::int64_t p = 0; p < po.dim(0); ++p)
            for (std::int64_t o = 0; o < out_ch; ++o) {
                float v = po[p * out_ch + o] + folded_b[o];
                if (relu) v = std::max(v, 0.0f);
                po[p * out_ch + o] = v;
            }
        // Track output range for requantization.
        const float lo = po.min(), hi = po.max();
        if (!calibrated) {
            out_lo = lo;
            out_hi = hi;
            calibrated = true;
        } else {
            out_lo = std::min(out_lo, lo);
            out_hi = std::max(out_hi, hi);
        }
        // Back to NCHW.
        tensor::Tensor y(tensor::Shape{x.dim(0), out_ch, geom.out_h(), geom.out_w()});
        const std::int64_t spatial = geom.out_h() * geom.out_w();
        for (std::int64_t n = 0; n < x.dim(0); ++n)
            for (std::int64_t s = 0; s < spatial; ++s)
                for (std::int64_t o = 0; o < out_ch; ++o)
                    y[(n * out_ch + o) * spatial + s] = po[(n * spatial + s) * out_ch + o];
        return y;
    }

    void finalize(float input_scale, std::int32_t input_zero, unsigned act_bits) {
        in_scale = input_scale;
        in_zero = input_zero;
        const auto wp = quant::choose_params(folded_w.min(), folded_w.max(), bits);
        zero_w = static_cast<std::int32_t>(wp.zero_point);
        wq.resize(static_cast<std::size_t>(folded_w.numel()));
        for (std::int64_t i = 0; i < folded_w.numel(); ++i)
            wq[static_cast<std::size_t>(i)] =
                static_cast<std::uint16_t>(wp.quantize(folded_w[i]));

        // Weights are static after compilation, so the Eq. (8) weight row
        // sums are hoisted here instead of being recomputed every batch.
        const std::int64_t patch = folded_w.numel() / out_ch;
        sum_w.assign(static_cast<std::size_t>(out_ch), 0);
        for (std::int64_t o = 0; o < out_ch; ++o) {
            std::int64_t s = 0;
            for (std::int64_t k = 0; k < patch; ++k)
                s += wq[static_cast<std::size_t>(o * patch + k)];
            sum_w[static_cast<std::size_t>(o)] = s;
        }

        // Output activations must index the *next* layer's LUT, so they are
        // quantized to the network-wide activation width.
        out_qmax = static_cast<std::int32_t>((1u << act_bits) - 1);
        const auto op = quant::choose_params(out_lo, out_hi, act_bits);
        out_scale = op.scale;
        out_zero = static_cast<std::int32_t>(op.zero_point);

        const double acc_scale = static_cast<double>(in_scale) * wp.scale;
        requant = quantize_multiplier(acc_scale / out_scale);
        bias_int.resize(static_cast<std::size_t>(out_ch));
        bias_raw.resize(static_cast<std::size_t>(out_ch));
        for (std::int64_t o = 0; o < out_ch; ++o) {
            // Keep the pre-narrowing value: the static analyzer proves the
            // int32 cast below lossless (or reports "bias-overflow").
            bias_raw[static_cast<std::size_t>(o)] =
                std::lround(static_cast<double>(folded_b[o]) / acc_scale);
            bias_int[static_cast<std::size_t>(o)] =
                static_cast<std::int32_t>(bias_raw[static_cast<std::size_t>(o)]);
        }

        // Blocked mode: re-pack the codes into panels once at compile time.
        // The packer also emits the Eq. (8) header; it must reproduce the
        // hoisted sum_w above exactly (the analyzer re-checks this on every
        // certificate via "panel-sum-mismatch").
        if (layout != kernels::LayoutMode::kScalar) {
            const kernels::Tuning& tiles = kernels::Tuning::current();
            wplan = kernels::make_panel_plan(out_ch, patch, tiles.to, tiles.tk);
            wq_panels.resize(static_cast<std::size_t>(wplan.elems()));
            std::vector<std::int64_t> header(static_cast<std::size_t>(out_ch));
            kernels::pack_weight_panels_into(wq.data(), bits, wplan,
                                             wq_panels.data(), header.data());
            assert(header == sum_w);
        }
    }

    /// The requantization epilogue shared (byte-for-byte) by the scalar and
    /// blocked paths. Pure integer arithmetic on the exact Eq. (8) corrected
    /// accumulator, so block order cannot change the result.
    [[nodiscard]] std::uint8_t requantize(std::int64_t oo,
                                          std::int64_t corrected) const {
        const std::int64_t a = corrected + bias_int[static_cast<std::size_t>(oo)];
        std::int32_t v = quant::fixed_point_rescale(a, requant) + out_zero;
        if (relu) v = std::max(v, out_zero);
        v = std::clamp(v, 0, out_qmax);
        return static_cast<std::uint8_t>(v);
    }

    QTensor run(const QTensor& x, kernels::Workspace& ws) const override {
        tensor::ConvGeom geom{x.n, in_ch, x.h, x.w, kernel, stride, pad};
        const std::int64_t patch = geom.patch();
        const std::int64_t positions = geom.positions();
        const std::int64_t oh = geom.out_h(), ow = geom.out_w();
        const std::int64_t spatial = oh * ow;

        QTensor y;
        y.n = x.n;
        y.c = out_ch;
        y.h = oh;
        y.w = ow;
        y.scale = out_scale;
        y.zero = out_zero;
        y.layout = x.layout; // the engine keeps one layout between ops
        y.data = ws.alloc<std::uint8_t>(y.numel());
        const bool nhwc = x.layout == kernels::ActivationLayout::kNHWC;

        if (!wq_panels.empty()) {
            // Blocked path: im2col is fused into activation panel production
            // (no (positions x patch) column buffer), the weight panels were
            // packed at finalize(), and the Eq. (8) row sums come from the
            // panel headers. Integer epilogue => bitwise-identical to the
            // scalar oracle below.
            const kernels::Tuning& tiles = kernels::Tuning::current();
            const kernels::PanelPlan xplan =
                kernels::make_panel_plan(positions, patch, tiles.tp, wplan.tk);
            const kernels::ActPanels xpan = kernels::pack_im2col_panels_u8(
                x.data, geom, x.layout, static_cast<std::uint16_t>(x.zero),
                xplan, ws, bits);

            kernels::BlockedGemmArgs args;
            args.bits = bits;
            args.lut = lut->table().data();
            args.w = kernels::WeightPanels{wplan, wq_panels.data(), sum_w.data()};
            args.x = xpan;
            args.o = out_ch;
            args.p = positions;
            args.k = patch;
            args.zero_w = zero_w;
            args.zero_x = x.zero;

            const std::int64_t nblocks = xplan.row_blocks();
            const std::int64_t acc_elems = xplan.tr * wplan.tr;
            const std::int64_t grain = runtime::grain_for(nblocks, 1);
            const std::int64_t chunks = runtime::chunk_count(0, nblocks, grain);
            std::int64_t* acc = ws.alloc<std::int64_t>(chunks * acc_elems);
            runtime::parallel_for_chunks(0, nblocks, grain,
                                         [&](std::int64_t bb, std::int64_t be,
                                             std::size_t chunk) {
                kernels::lut_gemm_blocked_tile(
                    args, bb, be,
                    acc + static_cast<std::int64_t>(chunk) * acc_elems,
                    [&](std::int64_t pp, std::int64_t oo,
                        std::int64_t corrected) {
                        const std::uint8_t v = requantize(oo, corrected);
                        if (nhwc) {
                            // Position-major: the blocked epilogue emits oo
                            // at unit stride within a row, writing one cache
                            // line per position.
                            y.data[pp * out_ch + oo] = v;
                        } else {
                            const std::int64_t n = pp / spatial;
                            y.data[(n * out_ch + oo) * spatial + pp % spatial] = v;
                        }
                    });
            });
            return y;
        }

        // Scalar oracle: uint8 im2col with zero-point padding (exact
        // hardware behaviour), then the row-major tiled LUT-GEMM.
        assert(!nhwc && "scalar mode runs NCHW only");
        std::uint16_t* cols = ws.alloc<std::uint16_t>(positions * patch);
        kernels::im2col_u8(x.data, geom, static_cast<std::uint16_t>(x.zero),
                           cols);

        kernels::LutGemmArgs args;
        args.bits = bits;
        args.lut = lut->table().data();
        args.wq = wq.data();
        args.xq = cols;
        args.o = out_ch;
        args.p = positions;
        args.k = patch;
        args.zero_w = zero_w;
        args.zero_x = x.zero;
        args.sum_w = sum_w.data(); // hoisted at finalize()

        // Tiled integer GEMM with the requantization epilogue. Every value
        // in the epilogue is integer arithmetic, so tiling/blocking cannot
        // change results; each position row writes disjoint y elements.
        const kernels::TileConfig tile;
        std::int64_t* sum_x = ws.alloc<std::int64_t>(positions);
        const std::int64_t grain =
            runtime::grain_for(positions, tune::kGrainGemmRows);
        const std::int64_t chunks = runtime::chunk_count(0, positions, grain);
        std::int64_t* acc = ws.alloc<std::int64_t>(chunks * tile.acc_elems());
        runtime::parallel_for_chunks(0, positions, grain,
                                     [&](std::int64_t pb, std::int64_t pe,
                                         std::size_t chunk) {
            kernels::lut_row_sums_x(args, pb, pe, sum_x);
            kernels::lut_gemm_tile(
                args, pb, pe, args.sum_w, sum_x, tile,
                acc + static_cast<std::int64_t>(chunk) * tile.acc_elems(),
                [&](std::int64_t pp, std::int64_t oo, std::int64_t corrected) {
                    const std::int64_t n = pp / spatial, s = pp % spatial;
                    y.data[(n * out_ch + oo) * spatial + s] =
                        requantize(oo, corrected);
                });
        });
        return y;
    }
};

struct MaxPoolOp final : IntInferenceEngine::Op {
    std::int64_t kernel = 2;

    tensor::Tensor run_float(const tensor::Tensor& x) override {
        nn::Context ctx;
        nn::MaxPool2d pool(kernel);
        return pool.forward(x, ctx);
    }

    QTensor run(const QTensor& x, kernels::Workspace& ws) const override {
        QTensor y;
        y.n = x.n;
        y.c = x.c;
        y.h = x.h / kernel;
        y.w = x.w / kernel;
        y.scale = x.scale;
        y.zero = x.zero;
        y.layout = x.layout;
        y.data = ws.alloc<std::uint8_t>(y.numel());
        if (x.layout == kernels::ActivationLayout::kNHWC) {
            // Channel-interleaved: the window max reduces x.c adjacent lanes
            // at unit stride per tap (taking max over uint8 is order-free).
            for (std::int64_t n = 0; n < x.n; ++n)
                for (std::int64_t oy = 0; oy < y.h; ++oy)
                    for (std::int64_t ox = 0; ox < y.w; ++ox) {
                        std::uint8_t* py =
                            y.data + ((n * y.h + oy) * y.w + ox) * y.c;
                        for (std::int64_t c = 0; c < x.c; ++c) py[c] = 0;
                        for (std::int64_t ky = 0; ky < kernel; ++ky)
                            for (std::int64_t kx = 0; kx < kernel; ++kx) {
                                const std::uint8_t* px =
                                    x.data + ((n * x.h + oy * kernel + ky) * x.w +
                                              ox * kernel + kx) *
                                                 x.c;
                                for (std::int64_t c = 0; c < x.c; ++c)
                                    py[c] = std::max(py[c], px[c]);
                            }
                    }
            return y;
        }
        for (std::int64_t i = 0; i < x.n * x.c; ++i) {
            const std::uint8_t* px = x.data + i * x.h * x.w;
            std::uint8_t* py = y.data + i * y.h * y.w;
            for (std::int64_t oy = 0; oy < y.h; ++oy)
                for (std::int64_t ox = 0; ox < y.w; ++ox) {
                    std::uint8_t best = 0;
                    for (std::int64_t ky = 0; ky < kernel; ++ky)
                        for (std::int64_t kx = 0; kx < kernel; ++kx)
                            best = std::max(
                                best, px[(oy * kernel + ky) * x.w + ox * kernel + kx]);
                    py[oy * y.w + ox] = best;
                }
        }
        return y;
    }
};

struct AvgPoolOp final : IntInferenceEngine::Op {
    std::int64_t kernel = 2;
    bool global = false;

    tensor::Tensor run_float(const tensor::Tensor& x) override {
        nn::Context ctx;
        if (global) {
            nn::GlobalAvgPool pool;
            return pool.forward(x, ctx);
        }
        nn::AvgPool2d pool(kernel);
        return pool.forward(x, ctx);
    }

    QTensor run(const QTensor& x, kernels::Workspace& ws) const override {
        QTensor y;
        y.n = x.n;
        y.c = x.c;
        y.h = global ? 1 : x.h / kernel;
        y.w = global ? 1 : x.w / kernel;
        y.scale = x.scale;
        y.zero = x.zero;
        y.layout = x.layout;
        y.data = ws.alloc<std::uint8_t>(y.numel());
        const std::int64_t kh = global ? x.h : kernel;
        const std::int64_t kw = global ? x.w : kernel;
        const std::int64_t window = kh * kw;
        if (x.layout == kernels::ActivationLayout::kNHWC) {
            // Per-channel integer sums are order-free, so interleaved
            // accumulation matches the planar loop bit-for-bit.
            for (std::int64_t n = 0; n < x.n; ++n)
                for (std::int64_t oy = 0; oy < y.h; ++oy)
                    for (std::int64_t ox = 0; ox < y.w; ++ox)
                        for (std::int64_t c = 0; c < x.c; ++c) {
                            std::int64_t acc = 0;
                            for (std::int64_t ky = 0; ky < kh; ++ky)
                                for (std::int64_t kx = 0; kx < kw; ++kx)
                                    acc += x.data[((n * x.h + oy * kh + ky) * x.w +
                                                   ox * kw + kx) *
                                                      x.c +
                                                  c];
                            y.data[((n * y.h + oy) * y.w + ox) * y.c + c] =
                                static_cast<std::uint8_t>(std::clamp<std::int64_t>(
                                    (acc + window / 2) / window, 0, 255));
                        }
            return y;
        }
        for (std::int64_t i = 0; i < x.n * x.c; ++i) {
            const std::uint8_t* px = x.data + i * x.h * x.w;
            std::uint8_t* py = y.data + i * y.h * y.w;
            for (std::int64_t oy = 0; oy < y.h; ++oy)
                for (std::int64_t ox = 0; ox < y.w; ++ox) {
                    std::int64_t acc = 0;
                    for (std::int64_t ky = 0; ky < kh; ++ky)
                        for (std::int64_t kx = 0; kx < kw; ++kx)
                            acc += px[(oy * kh + ky) * x.w + ox * kw + kx];
                    py[oy * y.w + ox] = static_cast<std::uint8_t>(
                        std::clamp<std::int64_t>((acc + window / 2) / window, 0, 255));
                }
        }
        return y;
    }
};

} // namespace

SafetyPolicy safety_policy_from_env() {
    const char* env = std::getenv("AMRET_ANALYZE");
    if (env == nullptr) return SafetyPolicy::kWarn;
    const std::string value(env);
    if (value == "off") return SafetyPolicy::kOff;
    if (value == "enforce") return SafetyPolicy::kEnforce;
    return SafetyPolicy::kWarn;
}

// ------------------------------------------------------------- engine ----

IntInferenceEngine::IntInferenceEngine(nn::Sequential& model,
                                       const data::Dataset& calibration,
                                       std::int64_t calib_samples,
                                       SafetyPolicy safety) {
    // The kernel data layout is captured once here, so one engine stays
    // internally consistent even if the process-wide mode changes later.
    layout_ = kernels::layout_mode();

    // --- 1. Fuse and collect ops ------------------------------------------
    std::vector<std::pair<tensor::Tensor, tensor::Tensor>> head_linears;
    std::vector<bool> head_relu;
    bool in_head = false;

    for (std::size_t i = 0; i < model.size(); ++i) {
        nn::Module* m = model.child(i);
        if (auto* conv = dynamic_cast<ApproxConv2d*>(m)) {
            if (in_head)
                throw std::invalid_argument("conv after classifier head unsupported");
            auto op = std::make_unique<ConvOp>();
            op->layout = layout_;
            op->in_ch = conv->in_channels();
            op->out_ch = conv->out_channels();
            op->kernel = conv->kernel();
            op->stride = conv->stride();
            op->pad = conv->padding();
            op->folded_w = conv->weight.value;
            op->folded_b = conv->bias.value;
            if (conv->multiplier().valid()) {
                op->lut = conv->multiplier().lut;
                op->bits = conv->multiplier().bits();
                op->mult_name = conv->multiplier().name;
                op->mult_hws = conv->multiplier().hws;
            } else {
                op->lut = std::make_shared<appmult::AppMultLut>(
                    appmult::AppMultLut::exact(8));
                op->bits = 8;
            }
            // Fold a following BatchNorm2d.
            if (i + 1 < model.size()) {
                if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(model.child(i + 1))) {
                    const std::int64_t patch =
                        op->folded_w.numel() / op->out_ch;
                    for (std::int64_t o = 0; o < op->out_ch; ++o) {
                        const float inv_std =
                            1.0f / std::sqrt(bn->running_var()[o] + 1e-5f);
                        const float g = bn->gamma.value[o] * inv_std;
                        for (std::int64_t k = 0; k < patch; ++k)
                            op->folded_w[o * patch + k] *= g;
                        op->folded_b[o] = (op->folded_b[o] - bn->running_mean()[o]) * g +
                                          bn->beta.value[o];
                    }
                    ++i;
                }
            }
            // Fuse a following ReLU.
            if (i + 1 < model.size() &&
                dynamic_cast<nn::ReLU*>(model.child(i + 1)) != nullptr) {
                op->relu = true;
                ++i;
            }
            ops_.push_back(std::move(op));
        } else if (auto* mp = dynamic_cast<nn::MaxPool2d*>(m)) {
            (void)mp;
            auto op = std::make_unique<MaxPoolOp>();
            ops_.push_back(std::move(op));
        } else if (dynamic_cast<nn::AvgPool2d*>(m) != nullptr) {
            auto op = std::make_unique<AvgPoolOp>();
            ops_.push_back(std::move(op));
        } else if (dynamic_cast<nn::GlobalAvgPool*>(m) != nullptr) {
            auto op = std::make_unique<AvgPoolOp>();
            op->global = true;
            ops_.push_back(std::move(op));
        } else if (dynamic_cast<nn::Flatten*>(m) != nullptr ||
                   dynamic_cast<nn::Dropout*>(m) != nullptr) {
            // Flatten is a view change handled at the head boundary; dropout
            // is identity at inference.
            continue;
        } else if (auto* linear = dynamic_cast<nn::Linear*>(m)) {
            in_head = true;
            head_linears.emplace_back(linear->weight.value, linear->bias.value);
            head_relu.push_back(false);
        } else if (dynamic_cast<nn::ReLU*>(m) != nullptr && in_head) {
            if (!head_relu.empty()) head_relu.back() = true;
        } else {
            throw std::invalid_argument("unsupported layer for int-only inference: " +
                                        m->name());
        }
    }
    if (head_linears.empty())
        throw std::invalid_argument("model has no classifier head");

    for (std::size_t i = 0; i < head_linears.size(); ++i) {
        head_chain_.push_back(HeadLayer{head_linears[i].first, head_linears[i].second,
                                        head_relu[i]});
    }

    // --- 2. Calibration ----------------------------------------------------
    const std::int64_t n_cal = std::min<std::int64_t>(calib_samples, calibration.size());
    if (n_cal < 1) throw std::invalid_argument("empty calibration set");
    float in_lo = 0.0f, in_hi = 0.0f;
    {
        data::DataLoader loader(calibration, std::min<std::int64_t>(n_cal, 32),
                                /*shuffle=*/false, 0);
        loader.start_epoch();
        data::Batch batch;
        std::int64_t used = 0;
        bool first = true;
        while (used < n_cal && loader.next(batch)) {
            if (first) {
                in_lo = batch.images.min();
                in_hi = batch.images.max();
                first = false;
            } else {
                in_lo = std::min(in_lo, batch.images.min());
                in_hi = std::max(in_hi, batch.images.max());
            }
            tensor::Tensor cur = batch.images;
            for (auto& op : ops_) cur = op->run_float(cur);
            used += batch.images.dim(0);
        }
    }
    // Activations must index every conv's LUT, so the network-wide
    // activation width is the narrowest multiplier width.
    act_bits_ = 8;
    for (auto& op : ops_) {
        if (auto* conv = dynamic_cast<ConvOp*>(op.get()))
            act_bits_ = std::min(act_bits_, conv->bits);
    }
    const auto ip = quant::choose_params(in_lo, in_hi, act_bits_);
    input_scale_ = ip.scale;
    input_zero_ = static_cast<std::int32_t>(ip.zero_point);

    // --- 3. Finalize integer parameters ------------------------------------
    float scale = input_scale_;
    std::int32_t zero = input_zero_;
    for (auto& op : ops_) {
        if (auto* conv = dynamic_cast<ConvOp*>(op.get())) {
            conv->finalize(scale, zero, act_bits_);
            scale = conv->out_scale;
            zero = conv->out_zero;
        }
        // Pool ops keep scale/zero.
    }

    // --- 4. Static overflow proof ------------------------------------------
    const analysis::GraphDesc desc = describe();
    // Workspace-arena plan key: the graph content digest (|1 so it is never
    // the "untracked" sentinel 0). Two engines with identical compiled
    // parameters share high-water accounting, mirroring the serve registry's
    // content-addressed model keys.
    arena_key_ = analysis::digest(desc) | 1ull;
    if (safety == SafetyPolicy::kOff) return;
    const std::string key = analysis::digest_key(desc);
    auto& cache = analysis::CertificateCache::instance();
    certificate_ = cache.lookup(key);
    if (certificate_ == nullptr) {
        auto cert =
            std::make_shared<analysis::Certificate>(analysis::analyze_graph(desc));
        cache.store(cert);
        certificate_ = std::move(cert);
    }
    if (!certificate_->safe) {
        if (safety == SafetyPolicy::kEnforce)
            throw std::runtime_error(
                "static analysis rejected the compiled integer graph (" + key +
                "): " + certificate_->summary());
        if (cache.first_warning(key))
            std::fprintf(stderr,
                         "[amret] warning: integer graph %s is not proven "
                         "overflow-free: %s\n",
                         key.c_str(), certificate_->summary().c_str());
    }
}

analysis::GraphDesc IntInferenceEngine::describe() const {
    analysis::GraphDesc desc;
    desc.act_bits = act_bits_;
    desc.ops.reserve(ops_.size());
    std::size_t conv_index = 0, pool_index = 0;
    for (const auto& op : ops_) {
        analysis::OpDesc d;
        if (const auto* conv = dynamic_cast<const ConvOp*>(op.get())) {
            d.kind = analysis::OpDesc::Kind::kConv;
            d.label = "conv" + std::to_string(conv_index++);
            d.conv.multiplier = conv->mult_name;
            d.conv.hws = conv->mult_hws;
            d.conv.bits = conv->bits;
            d.conv.relu = conv->relu;
            d.conv.out_ch = conv->out_ch;
            d.conv.k = conv->out_ch > 0
                           ? static_cast<std::int64_t>(conv->wq.size()) / conv->out_ch
                           : 0;
            d.conv.lut = conv->lut;
            d.conv.wq = conv->wq;
            d.conv.sum_w = conv->sum_w;
            d.conv.bias_raw = conv->bias_raw;
            d.conv.zero_w = conv->zero_w;
            d.conv.zero_x = conv->in_zero;
            d.conv.requant = conv->requant;
            d.conv.out_zero = conv->out_zero;
            d.conv.out_qmax = conv->out_qmax;
            if (!conv->wq_panels.empty()) {
                // Digest-excluded derived data; the analyzer cross-checks the
                // packing so the certificate covers the blocked path too.
                d.conv.panel_tr = conv->wplan.tr;
                d.conv.panel_tk = conv->wplan.tk;
                d.conv.wq_panels = conv->wq_panels;
            }
        } else if (const auto* avg = dynamic_cast<const AvgPoolOp*>(op.get())) {
            d.kind = analysis::OpDesc::Kind::kPool;
            d.label = "pool" + std::to_string(pool_index++);
            d.pool.kind = avg->global ? analysis::PoolOpDesc::Kind::kGlobalAvg
                                      : analysis::PoolOpDesc::Kind::kAvg;
            d.pool.kernel = avg->kernel;
        } else if (const auto* mp = dynamic_cast<const MaxPoolOp*>(op.get())) {
            d.kind = analysis::OpDesc::Kind::kPool;
            d.label = "pool" + std::to_string(pool_index++);
            d.pool.kind = analysis::PoolOpDesc::Kind::kMax;
            d.pool.kernel = mp->kernel;
        } else {
            continue; // unreachable: the constructor only builds these ops
        }
        desc.ops.push_back(std::move(d));
    }
    return desc;
}

IntInferenceEngine::~IntInferenceEngine() = default;

QTensor IntInferenceEngine::quantize_input(const tensor::Tensor& images,
                                           kernels::Workspace& ws) const {
    QTensor q;
    q.n = images.dim(0);
    q.c = images.dim(1);
    q.h = images.dim(2);
    q.w = images.dim(3);
    q.scale = input_scale_;
    q.zero = input_zero_;
    q.data = ws.alloc<std::uint8_t>(q.numel());
    const float qmax = static_cast<float>((1u << act_bits_) - 1);
    const bool nhwc = layout_ == kernels::LayoutMode::kBlockedNhwc;
    if (nhwc) q.layout = kernels::ActivationLayout::kNHWC;
    const std::int64_t spatial = q.h * q.w;
    runtime::parallel_for(0, images.numel(),
                          runtime::grain_for(images.numel(), 1024),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            // i indexes the destination; input images are always NCHW float.
            std::int64_t src = i;
            if (nhwc) {
                const std::int64_t c = i % q.c;
                const std::int64_t s = (i / q.c) % spatial;
                const std::int64_t n = i / (q.c * spatial);
                src = (n * q.c + c) * spatial + s;
            }
            const float v = std::nearbyint(images[src] / input_scale_ +
                                           static_cast<float>(input_zero_));
            q.data[i] = static_cast<std::uint8_t>(std::clamp(v, 0.0f, qmax));
        }
    });
    return q;
}

tensor::Tensor IntInferenceEngine::forward(const tensor::Tensor& images) {
    tensor::Tensor logits;
    forward_into(images, ws_, logits);
    return logits;
}

void IntInferenceEngine::forward_into(const tensor::Tensor& images,
                                      kernels::Workspace& ws,
                                      tensor::Tensor& logits) const {
    // One epoch per call: every intermediate activation and kernel scratch
    // buffer bumps out of \p ws, so a steady-state caller (e.g. a serving
    // worker reusing its workspace) allocates nothing on the heap. The epoch
    // is opened under this engine's layout-plan key, so a worker alternating
    // between models keeps per-model high-water marks and trim() never
    // releases the hot working set (see Workspace::begin).
    ws.begin(arena_key_);
    QTensor q = quantize_input(images, ws);
    for (const auto& op : ops_) q = op->run(q, ws);

    const std::int64_t classes = num_classes();
    if (logits.rank() != 2 || logits.dim(0) != q.n || logits.dim(1) != classes)
        logits = tensor::Tensor(tensor::Shape{q.n, classes});

    // Dequantize and run the float head. Each output row is an independent
    // fixed-order dot-product chain, so batched logits match single-sample
    // calls bitwise. The flattened head input is always channel-major (the
    // training-side Flatten order), so an NHWC-interleaved final activation
    // is transposed back here at the integer/float boundary.
    std::int64_t cur_dim = q.c * q.h * q.w;
    float* cur = ws.alloc<float>(q.n * cur_dim);
    if (q.layout == kernels::ActivationLayout::kNHWC) {
        const std::int64_t spatial = q.h * q.w;
        for (std::int64_t n = 0; n < q.n; ++n)
            for (std::int64_t s = 0; s < spatial; ++s)
                for (std::int64_t c = 0; c < q.c; ++c)
                    cur[(n * q.c + c) * spatial + s] =
                        q.scale *
                        (static_cast<float>(q.data[(n * spatial + s) * q.c + c]) -
                         static_cast<float>(q.zero));
    } else {
        for (std::int64_t i = 0; i < q.n * cur_dim; ++i)
            cur[i] = q.scale * (static_cast<float>(q.data[i]) -
                                static_cast<float>(q.zero));
    }

    for (std::size_t li = 0; li < head_chain_.size(); ++li) {
        const HeadLayer& layer = head_chain_[li];
        const std::int64_t out = layer.weight.dim(0);
        assert(layer.weight.dim(1) == cur_dim);
        float* next = li + 1 == head_chain_.size()
                          ? logits.data()
                          : ws.alloc<float>(q.n * out);
        const float* w = layer.weight.data();
        for (std::int64_t n = 0; n < q.n; ++n)
            for (std::int64_t o = 0; o < out; ++o) {
                const float* arow = cur + n * cur_dim;
                const float* brow = w + o * cur_dim;
                float acc = 0.0f;
                for (std::int64_t k = 0; k < cur_dim; ++k)
                    acc += arow[k] * brow[k];
                float v = acc + layer.bias[o];
                if (layer.relu) v = std::max(v, 0.0f);
                next[n * out + o] = v;
            }
        cur = next;
        cur_dim = out;
    }
}

double IntInferenceEngine::evaluate(const data::Dataset& dataset,
                                    std::int64_t batch_size) {
    data::DataLoader loader(dataset, batch_size, /*shuffle=*/false, 0);
    loader.start_epoch();
    data::Batch batch;
    double hits = 0.0;
    std::int64_t total = 0;
    while (loader.next(batch)) {
        const tensor::Tensor logits = forward(batch.images);
        hits += nn::top1_accuracy(logits, batch.labels) *
                static_cast<double>(batch.labels.size());
        total += static_cast<std::int64_t>(batch.labels.size());
    }
    return total ? hits / static_cast<double>(total) : 0.0;
}

} // namespace amret::approx
