#include "approx/lut_gemm.hpp"

#include "runtime/parallel.hpp"

#include <vector>

namespace amret::approx {

void lut_forward(const LutGemmArgs& args, const float* bias, float* y) {
    const std::int64_t o_rows = args.o, p_rows = args.p, depth = args.k;
    const unsigned bits = args.bits;

    // Row sums for the Eq. (8) zero-point correction terms.
    std::vector<std::int64_t> sum_w(static_cast<std::size_t>(o_rows), 0);
    runtime::parallel_for(0, o_rows, runtime::grain_for(o_rows, 8),
                          [&](std::int64_t ob, std::int64_t oe) {
        for (std::int64_t i = ob; i < oe; ++i) {
            const std::uint16_t* row = args.wq + i * depth;
            std::int64_t s = 0;
            for (std::int64_t kk = 0; kk < depth; ++kk) s += row[kk];
            sum_w[static_cast<std::size_t>(i)] = s;
        }
    });

    // Position rows of y are independent; each chunk owns a row range.
    runtime::parallel_for(0, p_rows, runtime::grain_for(p_rows, 4),
                          [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t pp = pb; pp < pe; ++pp) {
            const std::uint16_t* xrow = args.xq + pp * depth;
            std::int64_t sum_x = 0;
            for (std::int64_t kk = 0; kk < depth; ++kk) sum_x += xrow[kk];

            float* yrow = y + pp * o_rows;
            for (std::int64_t oo = 0; oo < o_rows; ++oo) {
                const std::uint16_t* wrow = args.wq + oo * depth;
                std::int64_t acc = 0;
                for (std::int64_t kk = 0; kk < depth; ++kk) {
                    acc += args.lut[(static_cast<std::uint32_t>(wrow[kk]) << bits) |
                                    xrow[kk]];
                }
                const std::int32_t zw = args.row_zero_w(oo);
                const float ss = args.row_scale_w(oo) * args.scale_x;
                const std::int64_t kzz =
                    depth * static_cast<std::int64_t>(zw) * args.zero_x;
                const std::int64_t corrected =
                    acc -
                    static_cast<std::int64_t>(args.zero_x) *
                        sum_w[static_cast<std::size_t>(oo)] -
                    static_cast<std::int64_t>(zw) * sum_x + kzz;
                yrow[oo] =
                    ss * static_cast<float>(corrected) + (bias ? bias[oo] : 0.0f);
            }
        }
    });
}

void lut_backward(const LutGemmArgs& args, const float* gyp, const float* grad_w_lut,
                  const float* grad_x_lut, float* gw_raw, float* gx_raw) {
    const std::int64_t o_rows = args.o, p_rows = args.p, depth = args.k;
    const unsigned bits = args.bits;
    const float zx = static_cast<float>(args.zero_x);

    // Activation gradients: each position row of gx is owned by one chunk.
    runtime::parallel_for(0, p_rows, runtime::grain_for(p_rows, 4),
                          [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t pp = pb; pp < pe; ++pp) {
            const std::uint16_t* xrow = args.xq + pp * depth;
            float* gxrow = gx_raw + pp * depth;
            const float* gyrow = gyp + pp * o_rows;
            for (std::int64_t oo = 0; oo < o_rows; ++oo) {
                const float g = gyrow[oo];
                if (g == 0.0f) continue;
                // The row's weight scale is folded into the activation-gradient
                // contribution here, since it varies per output channel in
                // per-channel mode.
                const float zw = static_cast<float>(args.row_zero_w(oo));
                const float gx_scale = args.row_scale_w(oo);
                const std::uint16_t* wrow = args.wq + oo * depth;
                for (std::int64_t kk = 0; kk < depth; ++kk) {
                    const std::uint32_t idx =
                        (static_cast<std::uint32_t>(wrow[kk]) << bits) | xrow[kk];
                    gxrow[kk] += g * gx_scale * (grad_x_lut[idx] - zw);
                }
            }
        }
    });

    // Weight gradients: iterate output channels outermost so each gw row is
    // owned by one chunk. The per-row accumulation over positions runs in
    // ascending pp order, matching the serial kernel bit for bit.
    runtime::parallel_for(0, o_rows, runtime::grain_for(o_rows, 1),
                          [&](std::int64_t ob, std::int64_t oe) {
        for (std::int64_t oo = ob; oo < oe; ++oo) {
            const std::uint16_t* wrow = args.wq + oo * depth;
            float* gwrow = gw_raw + oo * depth;
            for (std::int64_t pp = 0; pp < p_rows; ++pp) {
                const float g = gyp[pp * o_rows + oo];
                if (g == 0.0f) continue;
                const std::uint16_t* xrow = args.xq + pp * depth;
                for (std::int64_t kk = 0; kk < depth; ++kk) {
                    const std::uint32_t idx =
                        (static_cast<std::uint32_t>(wrow[kk]) << bits) | xrow[kk];
                    gwrow[kk] += g * (grad_w_lut[idx] - zx);
                }
            }
        }
    });
}

} // namespace amret::approx
