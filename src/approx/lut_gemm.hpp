/// \file lut_gemm.hpp
/// \brief Integer GEMM kernels driven by multiplier lookup tables.
///
/// These are the CPU equivalents of the paper's CUDA kernels: the forward
/// kernel replaces every multiply-accumulate with a product-LUT lookup and
/// applies the Eq. (8) zero-point correction; the backward kernel replaces
/// the multiplier derivative with a gradient-LUT lookup (Eq. 9). They are
/// shared by ApproxConv2d (after im2col) and ApproxLinear and benchmarked
/// stand-alone by bench_micro.
#pragma once

#include <cstdint>

namespace amret::approx {

/// Operand matrices and quantization constants of one LUT GEMM.
/// Layout: wq is (rows_o, depth_k), xq is (rows_p, depth_k), both row-major;
/// LUT index is (w << bits) | x.
struct LutGemmArgs {
    unsigned bits = 8;
    const std::int32_t* lut = nullptr;  ///< product LUT, 2^(2*bits) entries
    const std::uint16_t* wq = nullptr;  ///< quantized weights (O, K)
    const std::uint16_t* xq = nullptr;  ///< quantized activations (P, K)
    std::int64_t o = 0;                 ///< output rows (channels)
    std::int64_t p = 0;                 ///< positions (batch x spatial)
    std::int64_t k = 0;                 ///< reduction depth
    float scale_w = 1.0f, scale_x = 1.0f;
    std::int32_t zero_w = 0, zero_x = 0;
    /// Optional per-output-channel weight quantization: when non-null these
    /// arrays (length O) override scale_w / zero_w row-wise.
    const float* scale_w_per_o = nullptr;
    const std::int32_t* zero_w_per_o = nullptr;

    [[nodiscard]] float row_scale_w(std::int64_t oo) const {
        return scale_w_per_o ? scale_w_per_o[oo] : scale_w;
    }
    [[nodiscard]] std::int32_t row_zero_w(std::int64_t oo) const {
        return zero_w_per_o ? zero_w_per_o[oo] : zero_w;
    }
};

/// Forward: y[p, o] = s_w*s_x*(sum_k LUT[w,x] - Z_x*sumW[o] - Z_w*sumX[p]
///                             + K*Z_w*Z_x) + bias[o].
/// \p bias may be null. \p y is (P, O), overwritten.
void lut_forward(const LutGemmArgs& args, const float* bias, float* y);

/// Backward: accumulates the multiplier-gradient sums
///   gw_raw[o, k] += sum_p gyp[p, o] * (gradW[w,x] - Z_x)
///   gx_raw[p, k] += sum_o gyp[p, o] * s_w[o] * (gradX[w,x] - Z_w)
/// The weight scale is folded into gx_raw (it varies per row in per-channel
/// mode); the remaining factors — s_x for gw, and the clamp masks — are
/// applied by the caller (see ApproxConv2d::backward_quant). Buffers must
/// be zero-initialized.
void lut_backward(const LutGemmArgs& args, const float* gyp, const float* grad_w_lut,
                  const float* grad_x_lut, float* gw_raw, float* gx_raw);

} // namespace amret::approx
