/// \file inference.hpp
/// \brief Integer-arithmetic-only inference — the deployment path of Fig. 1.
///
/// Training simulates the accelerator with fake quantization; the deployed
/// accelerator runs pure integer arithmetic (Jacob et al., CVPR'18). This
/// engine compiles a trained sequential CNN into that form:
///   1. BatchNorm layers are folded into the preceding convolution,
///   2. a float calibration pass records every fused op's output range,
///   3. weights are quantized to codes; each op gets a fixed-point
///      requantization multiplier M = s_in*s_w/s_out as (int32 mul, shift),
///   4. execution uses uint8 activation tensors, the AppMult product LUT,
///      int32/int64 accumulation, integer bias addition, fixed-point
///      requantization with clamping, and integer max/avg pooling.
/// The classifier head stays float (dequantize before it), matching the
/// paper's setup where only conv layers are approximate.
///
/// Supported topology: a Sequential of ApproxConv2d / BatchNorm2d / ReLU /
/// MaxPool2d / AvgPool2d / GlobalAvgPool / Flatten / Dropout / Linear
/// (i.e. LeNet and the VGG family; residual ResNets need skip-scale
/// alignment, which is out of scope here).
#pragma once

#include "analysis/graph.hpp"
#include "approx/approx_conv.hpp"
#include "data/dataset.hpp"
#include "kernels/layout.hpp"
#include "kernels/tuning.hpp"
#include "kernels/workspace.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace amret::approx {

/// What the engine does with the static-analysis verdict at compile time.
enum class SafetyPolicy {
    kOff,     ///< skip analysis entirely
    kWarn,    ///< analyze; warn once per graph key when unprovable
    kEnforce, ///< analyze; refuse to construct an unprovable graph
};

/// Policy from the AMRET_ANALYZE environment variable ("off" / "warn" /
/// "enforce"; default warn) — the engine constructor's default.
SafetyPolicy safety_policy_from_env();

/// A uint8 activation tensor with its affine interpretation. The storage is
/// a view into a kernels::Workspace arena (valid until that workspace's next
/// reset/trim), so chaining ops through one arena performs no heap
/// allocation in steady state. The element order is \p layout: planar NCHW
/// (the default, and the scalar/blocked modes' inter-op format) or
/// channel-interleaved NHWC (the blocked-nhwc mode, where the conv epilogue
/// writes position-major at unit stride and the fused im2col packer reads
/// channel-adjacent taps from one cache line).
struct QTensor {
    std::uint8_t* data = nullptr; ///< workspace-backed, not owned
    std::int64_t n = 0, c = 0, h = 0, w = 0; ///< logical dims (h=w=1 for flat)
    float scale = 1.0f;
    std::int32_t zero = 0;
    kernels::ActivationLayout layout = kernels::ActivationLayout::kNCHW;

    [[nodiscard]] std::int64_t numel() const { return n * c * h * w; }
};

/// Compiled integer-only network.
class IntInferenceEngine {
public:
    /// Compiles \p model (see the supported topology above). \p calibration
    /// provides activations for range calibration; \p calib_samples bounds
    /// how many are used. The model itself is not modified.
    /// Throws std::invalid_argument on unsupported layers. Unless \p safety
    /// is kOff, the compiled graph is run through the static overflow
    /// analyzer (cached by graph digest); kEnforce throws std::runtime_error
    /// when the proof fails, kWarn warns once per graph key.
    IntInferenceEngine(nn::Sequential& model, const data::Dataset& calibration,
                       std::int64_t calib_samples = 128,
                       SafetyPolicy safety = safety_policy_from_env());
    ~IntInferenceEngine(); // out-of-line: Op is incomplete here

    /// Runs integer-only inference; returns float logits (N, classes).
    /// Thin wrapper over forward_into() using the engine's own workspace —
    /// NOT safe to call concurrently on one engine (use forward_into with a
    /// per-caller workspace for that).
    tensor::Tensor forward(const tensor::Tensor& images);

    /// Runs integer-only inference with caller-provided scratch and output.
    /// All engine state is immutable after construction, so concurrent calls
    /// on one shared engine are safe as long as each caller brings its own
    /// \p ws. \p logits is shaped to (N, classes) in place and reused when it
    /// already matches, so a steady-state caller performs no heap allocation.
    /// Every kernel in the path is row-independent (integer ops + fixed-order
    /// float dot products in the head), so batched rows are bitwise-identical
    /// to single-sample calls on the same inputs.
    void forward_into(const tensor::Tensor& images, kernels::Workspace& ws,
                      tensor::Tensor& logits) const;

    /// Top-1 accuracy over a dataset.
    double evaluate(const data::Dataset& dataset, std::int64_t batch_size = 64);

    /// Number of compiled integer ops (fused convs + pools).
    [[nodiscard]] std::size_t num_ops() const { return ops_.size(); }

    /// Plain-data description of the compiled integer graph for the static
    /// analyzer (identity metadata left empty; callers that know the model /
    /// multiplier names fill them in).
    [[nodiscard]] analysis::GraphDesc describe() const;

    /// The safety certificate derived (or cache-hit) at construction;
    /// nullptr when the policy was kOff.
    [[nodiscard]] std::shared_ptr<const analysis::Certificate> certificate() const {
        return certificate_;
    }

    /// Output width of the float classifier head.
    [[nodiscard]] std::int64_t num_classes() const {
        return head_chain_.back().weight.dim(0);
    }

    struct Op; // public so op implementations can derive in the .cpp

private:
    /// Float classifier head: Linear (ReLU Linear)* chain copied at compile.
    struct HeadLayer {
        tensor::Tensor weight; // (out, in)
        tensor::Tensor bias;   // (out)
        bool relu = false;
    };

    std::vector<std::unique_ptr<Op>> ops_;
    std::vector<HeadLayer> head_chain_;
    std::shared_ptr<const analysis::Certificate> certificate_;
    unsigned act_bits_ = 8; ///< network-wide activation width (min LUT width)
    float input_scale_ = 1.0f;
    std::int32_t input_zero_ = 0;
    /// Kernel data layout, captured once at construction from layout_mode():
    /// scalar row-major (the oracle), blocked panels with NCHW between ops
    /// (default), or blocked panels with NHWC-interleaved activations.
    kernels::LayoutMode layout_ = kernels::LayoutMode::kBlocked;
    /// Layout-plan key for workspace-arena high-water tracking (Workspace::
    /// begin): a hash of the compiled graph digest, so a serve worker
    /// alternating between engines keeps each one's working set accounted.
    std::uint64_t arena_key_ = 0;
    kernels::Workspace ws_; ///< scratch arena backing the forward() wrapper

    QTensor quantize_input(const tensor::Tensor& images,
                           kernels::Workspace& ws) const;
};

/// The fixed-point requantization helpers now live in src/quant
/// (quant::FixedPointMultiplier et al.); aliases kept for compatibility.
using FixedPointMultiplier = quant::FixedPointMultiplier;
using quant::fixed_point_rescale;
using quant::quantize_multiplier;

} // namespace amret::approx
