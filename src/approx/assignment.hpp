/// \file assignment.hpp
/// \brief Per-layer multiplier assignments and the shared multiplier-artifact
///        cache (DESIGN.md §16).
///
/// The paper retrains a network against one approximate multiplier; HEAM and
/// the hardware-driven co-optimization line of work show the interesting
/// accuracy/area trade-offs come from assigning *different* multipliers (and
/// gradient HWS values) per layer. MultiplierAssignment is the first-class
/// value for that: a model-wide default LayerChoice plus sparse per-layer
/// overrides, addressed by the approximate layer's position in the model's
/// deterministic visit order (the same order configure_approx_layers walks).
///
/// Assignments are content-addressed: digest() is an FNV-1a hash over the
/// canonical form (overrides equal to the default are dropped at insertion,
/// so "uniform via explicit entries" and "uniform via default" share a
/// digest). The 16-hex key() feeds the serve registry's model key, the
/// analysis certificate metadata, checkpoint v3, and the DSE result cache.
///
/// MultiplierCache is the one sanctioned path from a multiplier *name* to
/// the product/gradient LUT objects layers consume: it builds each artifact
/// once per (name) / (name, mode, hws) and hands out shared_ptrs, so N
/// layers sharing a multiplier share LUT storage and never rebuild it
/// (obs counters `approx.mult_cache.*` make the dedup assertable). Direct
/// appmult::Registry lookups in layer/engine/serve/train code are forbidden
/// by the `registry-discipline` lint rule; this file is the escape hatch.
#pragma once

#include "approx/approx_conv.hpp"
#include "core/grad_lut.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace amret::approx {

/// One layer's multiplier choice: a registry name plus the gradient
/// configuration used when retraining that layer.
struct LayerChoice {
    std::string multiplier;  ///< appmult registry name
    unsigned hws = 0;        ///< gradient half-window size (0 = registry default)
    core::GradientMode grad = core::GradientMode::kDifference;

    bool operator==(const LayerChoice& other) const = default;
};

/// Ordered per-approx-layer multiplier configuration with a model-wide
/// default. Layer indices count approximate layers (ApproxConv2d /
/// ApproxLinear / DepthwiseConv2d) in the model's visit order.
class MultiplierAssignment {
public:
    MultiplierAssignment() = default;
    explicit MultiplierAssignment(LayerChoice def) : default_(std::move(def)) {}

    /// Uniform assignment: every layer runs \p def.
    static MultiplierAssignment uniform(LayerChoice def) {
        return MultiplierAssignment(std::move(def));
    }

    [[nodiscard]] const LayerChoice& fallback() const { return default_; }
    void set_fallback(LayerChoice def);

    /// Installs an override for one layer. Overrides equal to the default are
    /// dropped (canonical form), so redundant entries do not change digest().
    void set_layer(std::size_t layer_index, LayerChoice choice);

    /// The effective choice for a layer (override or default).
    [[nodiscard]] const LayerChoice& at(std::size_t layer_index) const;

    [[nodiscard]] const std::map<std::size_t, LayerChoice>& overrides() const {
        return overrides_;
    }
    [[nodiscard]] bool is_uniform() const { return overrides_.empty(); }
    [[nodiscard]] bool empty() const { return default_.multiplier.empty(); }

    /// FNV-1a content digest of the canonical form (default + sorted
    /// overrides, each field separated; grad mode and HWS included).
    [[nodiscard]] std::uint64_t digest() const;

    /// 16-hex-digit rendering of digest() — the content-address used by the
    /// serve registry, certificates, checkpoints, and the DSE result cache.
    [[nodiscard]] std::string key() const;

    /// JSON document (schema version 1):
    ///   {"version": 1,
    ///    "default": {"multiplier": "mul8u_acc", "hws": 16, "grad": "diff"},
    ///    "layers": [{"index": 1, "multiplier": "mul8u_rm8", ...}]}
    [[nodiscard]] std::string to_json() const;

    /// Parses a to_json() document; nullopt on malformed input or an empty
    /// default multiplier name.
    static std::optional<MultiplierAssignment> from_json(const std::string& text);

    /// Reads \p path and parses it; nullopt on I/O or parse failure.
    static std::optional<MultiplierAssignment> load(const std::string& path);

    /// Writes to_json() to \p path; false on I/O failure.
    bool save(const std::string& path) const;

    bool operator==(const MultiplierAssignment& other) const = default;

private:
    LayerChoice default_;
    std::map<std::size_t, LayerChoice> overrides_; ///< canonical: != default_
};

/// Process-wide per-multiplier artifact cache. Product LUTs are keyed by
/// multiplier name; gradient LUTs by (name, mode, hws). Thread-safe; builds
/// happen under the lock (the underlying registry builders are themselves
/// serialized, so contention is bounded by first use).
class MultiplierCache {
public:
    static MultiplierCache& instance();

    /// Shared product LUT for a registry name; throws std::out_of_range on
    /// unknown names.
    std::shared_ptr<const appmult::AppMultLut> lut(const std::string& name);

    /// Shared gradient LUT for (name, mode, hws). \p hws == 0 resolves to the
    /// registry's default HWS for the multiplier.
    std::shared_ptr<const core::GradLut> grad(const std::string& name,
                                              core::GradientMode mode,
                                              unsigned hws);

    /// Full MultiplierConfig for one LayerChoice (LUT + grad + identity
    /// metadata with the HWS resolved).
    MultiplierConfig config(const LayerChoice& choice);

    /// Resolves hws == 0 to the registry default for \p name.
    [[nodiscard]] unsigned resolve_hws(const std::string& name, unsigned hws) const;

    struct Stats {
        std::int64_t lut_builds = 0;
        std::int64_t grad_builds = 0;
        std::int64_t hits = 0;
    };
    [[nodiscard]] Stats stats() const;

    /// Drops every cached artifact (tests).
    void clear();

private:
    MultiplierCache() = default;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const appmult::AppMultLut>> luts_;
    std::unordered_map<std::string, std::shared_ptr<const core::GradLut>> grads_;
    Stats stats_;
};

/// Applies \p assignment to every approximate layer of \p root in visit
/// order: layer i gets MultiplierCache::config(assignment.at(i)) and \p mode.
/// Returns the number of approximate layers configured. Throws
/// std::out_of_range when the assignment names an unknown multiplier.
std::size_t apply_assignment(nn::Module& root,
                             const MultiplierAssignment& assignment,
                             ComputeMode mode);

/// Number of approximate layers apply_assignment would configure.
std::size_t count_approx_layers(nn::Module& root);

} // namespace amret::approx
