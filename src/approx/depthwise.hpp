/// \file depthwise.hpp
/// \brief Depthwise convolution with AppMult-simulated arithmetic.
///
/// Depthwise-separable blocks (depthwise 3x3 + pointwise 1x1) dominate
/// mobile accelerators — a prime deployment target for approximate
/// multipliers. This layer convolves each channel with its own single
/// filter; combined with a 1x1 ApproxConv2d it forms the separable block
/// used by models::make_mobilenet.
///
/// Quantized mode follows the same Eq. (7)/(8)/(9) scheme as ApproxConv2d:
/// LUT products forward, gradient-LUT backward, clamp-aware STE through the
/// quantizers. Per-invocation state (columns, codes, the arena) lives in
/// the caller's nn::Context.
#pragma once

#include "approx/approx_conv.hpp"

namespace amret::approx {

/// Channel-wise conv: weight (C, K, K), each channel c convolved with its
/// own filter; stride/padding like ApproxConv2d.
class DepthwiseConv2d : public nn::Module {
public:
    DepthwiseConv2d(std::int64_t channels, std::int64_t kernel, std::int64_t stride,
                    std::int64_t pad, util::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x, nn::Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, nn::Context& ctx) override;
    [[nodiscard]] nn::BatchCoupling coupling() const override;
    void batch_pre_pass(const tensor::Tensor& x) override;
    void collect_params(std::vector<nn::Param*>& out) override;
    void save_extra_state(std::vector<float>& out) const override;
    void load_extra_state(const float*& cursor) override;
    [[nodiscard]] std::string name() const override { return "DepthwiseConv2d"; }

    void set_mode(ComputeMode mode) { mode_ = mode; }
    [[nodiscard]] ComputeMode mode() const { return mode_; }
    void set_multiplier(MultiplierConfig config);
    [[nodiscard]] const MultiplierConfig& multiplier() const { return mult_; }

    nn::Param weight; ///< (C, K, K)
    nn::Param bias;   ///< (C)

    /// Multiplications executed by the most recent forward call through
    /// \p ctx.
    [[nodiscard]] std::int64_t last_forward_macs(const nn::Context& ctx) const;

private:
    // Per-invocation state (nn::Context slot). Forward caches live in the
    // embedded workspace arena: reset at the start of forward(), valid
    // through the matching backward (DESIGN.md §10/§11).
    struct State {
        tensor::ConvGeom geom;  ///< per-channel geometry (in_ch = 1)
        std::int64_t batch = 0;
        kernels::Workspace ws;
        float* cols = nullptr;  ///< (C*P, K*K) channel-blocked columns (ws-backed)
        kernels::QuantView xq;  ///< quant: codes of cols
        kernels::QuantView wq;  ///< quant: codes of (C, K*K)
    };

    tensor::Tensor forward_float(const tensor::Tensor& x, State& st);
    tensor::Tensor forward_quant(const tensor::Tensor& x, State& st,
                                 nn::Context& ctx);

    std::int64_t channels_, kernel_, stride_, pad_;
    ComputeMode mode_ = ComputeMode::kFloat;
    MultiplierConfig mult_;
    quant::EmaObserver act_observer_;
};

} // namespace amret::approx
