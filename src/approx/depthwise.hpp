/// \file depthwise.hpp
/// \brief Depthwise convolution with AppMult-simulated arithmetic.
///
/// Depthwise-separable blocks (depthwise 3x3 + pointwise 1x1) dominate
/// mobile accelerators — a prime deployment target for approximate
/// multipliers. This layer convolves each channel with its own single
/// filter; combined with a 1x1 ApproxConv2d it forms the separable block
/// used by models::make_mobilenet.
///
/// Quantized mode follows the same Eq. (7)/(8)/(9) scheme as ApproxConv2d:
/// LUT products forward, gradient-LUT backward, clamp-aware STE through the
/// quantizers.
#pragma once

#include "approx/approx_conv.hpp"

namespace amret::approx {

/// Channel-wise conv: weight (C, K, K), each channel c convolved with its
/// own filter; stride/padding like ApproxConv2d.
class DepthwiseConv2d : public nn::Module {
public:
    DepthwiseConv2d(std::int64_t channels, std::int64_t kernel, std::int64_t stride,
                    std::int64_t pad, util::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x) override;
    tensor::Tensor backward(const tensor::Tensor& gy) override;
    void collect_params(std::vector<nn::Param*>& out) override;
    void save_extra_state(std::vector<float>& out) const override;
    void load_extra_state(const float*& cursor) override;
    [[nodiscard]] std::string name() const override { return "DepthwiseConv2d"; }

    void set_mode(ComputeMode mode) { mode_ = mode; }
    [[nodiscard]] ComputeMode mode() const { return mode_; }
    void set_multiplier(MultiplierConfig config);
    [[nodiscard]] const MultiplierConfig& multiplier() const { return mult_; }

    nn::Param weight; ///< (C, K, K)
    nn::Param bias;   ///< (C)

    [[nodiscard]] std::int64_t last_forward_macs() const {
        return geom_.batch == 0
                   ? 0
                   : geom_.positions() * kernel_ * kernel_ * channels_;
    }

private:
    tensor::Tensor forward_float(const tensor::Tensor& x);
    tensor::Tensor forward_quant(const tensor::Tensor& x);

    std::int64_t channels_, kernel_, stride_, pad_;
    ComputeMode mode_ = ComputeMode::kFloat;
    MultiplierConfig mult_;
    quant::EmaObserver act_observer_;

    tensor::ConvGeom geom_; ///< per-channel geometry (in_ch = 1)
    std::int64_t batch_ = 0;
    // Forward caches live in the workspace arena: reset at the start of
    // forward(), valid through the matching backward (DESIGN.md §10).
    kernels::Workspace ws_;
    float* cols_ = nullptr; // (C*P, K*K) channel-blocked columns (ws_-backed)
    kernels::QuantView xq_; // quant: codes of cols
    kernels::QuantView wq_; // quant: codes of (C, K*K)
};

} // namespace amret::approx
