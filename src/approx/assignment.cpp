#include "approx/assignment.hpp"

#include "appmult/registry.hpp"
#include "approx/depthwise.hpp"
#include "obs/obs.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace amret::approx {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over a byte range, continuing from \p h, with a field separator
/// (the serve-registry keying discipline).
std::uint64_t fnv_field(std::uint64_t h, const std::string& s) {
    for (const char ch : s) {
        h ^= static_cast<std::uint8_t>(ch);
        h *= kFnvPrime;
    }
    h ^= 0u;
    h *= kFnvPrime;
    return h;
}

std::uint64_t fnv_field(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= static_cast<std::uint8_t>(v >> (8 * i));
        h *= kFnvPrime;
    }
    h ^= 0u;
    h *= kFnvPrime;
    return h;
}

std::uint64_t fnv_choice(std::uint64_t h, const LayerChoice& c) {
    h = fnv_field(h, c.multiplier);
    h = fnv_field(h, c.hws);
    h = fnv_field(h, static_cast<std::uint64_t>(c.grad));
    return h;
}

core::GradientMode parse_grad_mode(const std::string& name, bool& ok) {
    ok = true;
    if (name == "ste") return core::GradientMode::kSte;
    if (name == "diff" || name.empty()) return core::GradientMode::kDifference;
    if (name == "true") return core::GradientMode::kTrue;
    ok = false;
    return core::GradientMode::kDifference;
}

// ------------------------------------------------- minimal JSON scanning ----
// The repo carries no JSON library; like kernels/tuning.cpp, the parser below
// scans for the exact shapes to_json() emits (and tolerates re-ordered fields
// and extra whitespace). It is not a general JSON parser.

void skip_ws(const std::string& s, std::size_t& pos) {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' || s[pos] == '\r'))
        ++pos;
}

/// Finds `"key"` at object depth relative to \p from and returns the index
/// just past the following ':'; npos when absent.
std::size_t find_key(const std::string& s, const std::string& key,
                     std::size_t from, std::size_t to) {
    const std::string quoted = "\"" + key + "\"";
    std::size_t pos = s.find(quoted, from);
    while (pos != std::string::npos && pos < to) {
        std::size_t p = pos + quoted.size();
        skip_ws(s, p);
        if (p < s.size() && s[p] == ':') return p + 1;
        pos = s.find(quoted, pos + 1);
    }
    return std::string::npos;
}

bool parse_string_at(const std::string& s, std::size_t pos, std::string& out) {
    skip_ws(s, pos);
    if (pos >= s.size() || s[pos] != '"') return false;
    const std::size_t end = s.find('"', pos + 1);
    if (end == std::string::npos) return false;
    out = s.substr(pos + 1, end - pos - 1);
    return true;
}

bool parse_uint_at(const std::string& s, std::size_t pos, std::uint64_t& out) {
    skip_ws(s, pos);
    if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return false;
    out = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
        out = out * 10 + static_cast<std::uint64_t>(s[pos] - '0');
        ++pos;
    }
    return true;
}

/// Extent [open, close] of the object/array starting at the first '{' or '['
/// at/after \p pos; false when unbalanced.
bool find_extent(const std::string& s, std::size_t pos, char open, char close,
                 std::size_t& begin, std::size_t& end) {
    begin = s.find(open, pos);
    if (begin == std::string::npos) return false;
    int depth = 0;
    for (std::size_t i = begin; i < s.size(); ++i) {
        if (s[i] == open) ++depth;
        else if (s[i] == close && --depth == 0) {
            end = i;
            return true;
        }
    }
    return false;
}

/// Parses one {"multiplier": ..., "hws": ..., "grad": ...} object body.
bool parse_choice(const std::string& s, std::size_t begin, std::size_t end,
                  LayerChoice& out) {
    const std::size_t mult_pos = find_key(s, "multiplier", begin, end);
    if (mult_pos == std::string::npos ||
        !parse_string_at(s, mult_pos, out.multiplier) || out.multiplier.empty())
        return false;
    const std::size_t hws_pos = find_key(s, "hws", begin, end);
    if (hws_pos != std::string::npos) {
        std::uint64_t v = 0;
        if (!parse_uint_at(s, hws_pos, v) || v > 1024) return false;
        out.hws = static_cast<unsigned>(v);
    }
    const std::size_t grad_pos = find_key(s, "grad", begin, end);
    if (grad_pos != std::string::npos) {
        std::string name;
        if (!parse_string_at(s, grad_pos, name)) return false;
        bool ok = false;
        out.grad = parse_grad_mode(name, ok);
        if (!ok) return false;
    }
    return true;
}

void append_choice_fields(std::ostringstream& os, const LayerChoice& c) {
    os << "\"multiplier\": \"" << c.multiplier << "\", \"hws\": " << c.hws
       << ", \"grad\": \"" << core::gradient_mode_name(c.grad) << "\"";
}

} // namespace

// ------------------------------------------------- MultiplierAssignment ----

void MultiplierAssignment::set_fallback(LayerChoice def) {
    default_ = std::move(def);
    // Re-canonicalize: overrides that now equal the default are redundant.
    for (auto it = overrides_.begin(); it != overrides_.end();) {
        if (it->second == default_) it = overrides_.erase(it);
        else ++it;
    }
}

void MultiplierAssignment::set_layer(std::size_t layer_index, LayerChoice choice) {
    if (choice == default_) overrides_.erase(layer_index);
    else overrides_[layer_index] = std::move(choice);
}

const LayerChoice& MultiplierAssignment::at(std::size_t layer_index) const {
    const auto it = overrides_.find(layer_index);
    return it == overrides_.end() ? default_ : it->second;
}

std::uint64_t MultiplierAssignment::digest() const {
    std::uint64_t h = kFnvOffset;
    h = fnv_field(h, std::string("AMASSIGN1"));
    h = fnv_choice(h, default_);
    h = fnv_field(h, static_cast<std::uint64_t>(overrides_.size()));
    for (const auto& [index, choice] : overrides_) {
        h = fnv_field(h, static_cast<std::uint64_t>(index));
        h = fnv_choice(h, choice);
    }
    return h;
}

std::string MultiplierAssignment::key() const {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest()));
    return std::string(buf);
}

std::string MultiplierAssignment::to_json() const {
    std::ostringstream os;
    os << "{\n  \"version\": 1,\n  \"default\": {";
    append_choice_fields(os, default_);
    os << "},\n  \"layers\": [";
    bool first = true;
    for (const auto& [index, choice] : overrides_) {
        os << (first ? "\n" : ",\n") << "    {\"index\": " << index << ", ";
        append_choice_fields(os, choice);
        os << "}";
        first = false;
    }
    os << (first ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

std::optional<MultiplierAssignment> MultiplierAssignment::from_json(
    const std::string& text) {
    const std::size_t def_pos = find_key(text, "default", 0, text.size());
    if (def_pos == std::string::npos) return std::nullopt;
    std::size_t def_begin = 0, def_end = 0;
    if (!find_extent(text, def_pos, '{', '}', def_begin, def_end))
        return std::nullopt;
    LayerChoice def;
    if (!parse_choice(text, def_begin, def_end, def)) return std::nullopt;
    MultiplierAssignment out(std::move(def));

    const std::size_t layers_pos = find_key(text, "layers", 0, text.size());
    if (layers_pos == std::string::npos) return out; // uniform document
    std::size_t arr_begin = 0, arr_end = 0;
    if (!find_extent(text, layers_pos, '[', ']', arr_begin, arr_end))
        return std::nullopt;
    std::size_t cursor = arr_begin + 1;
    while (cursor < arr_end) {
        std::size_t obj_begin = 0, obj_end = 0;
        if (!find_extent(text, cursor, '{', '}', obj_begin, obj_end) ||
            obj_begin >= arr_end)
            break;
        const std::size_t idx_pos = find_key(text, "index", obj_begin, obj_end);
        std::uint64_t index = 0;
        LayerChoice choice;
        if (idx_pos == std::string::npos || !parse_uint_at(text, idx_pos, index) ||
            index > 100000 || !parse_choice(text, obj_begin, obj_end, choice))
            return std::nullopt;
        out.set_layer(static_cast<std::size_t>(index), std::move(choice));
        cursor = obj_end + 1;
    }
    return out;
}

std::optional<MultiplierAssignment> MultiplierAssignment::load(
    const std::string& path) {
    std::ifstream f(path);
    if (!f) return std::nullopt;
    std::ostringstream buf;
    buf << f.rdbuf();
    return from_json(buf.str());
}

bool MultiplierAssignment::save(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << to_json();
    return static_cast<bool>(f);
}

// ----------------------------------------------------- MultiplierCache ----

MultiplierCache& MultiplierCache::instance() {
    static MultiplierCache cache; // invariant-ok: the synchronized singleton itself
    return cache;
}

std::shared_ptr<const appmult::AppMultLut> MultiplierCache::lut(
    const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = luts_.find(name);
    if (it != luts_.end()) {
        ++stats_.hits;
        AMRET_OBS_COUNT("approx.mult_cache.hits", 1);
        return it->second;
    }
    // The one sanctioned registry lookup on the layer-config path.
    auto& reg = appmult::Registry::instance(); // invariant-ok: MultiplierCache is the assignment path
    auto built = std::make_shared<const appmult::AppMultLut>(reg.lut(name));
    ++stats_.lut_builds;
    AMRET_OBS_COUNT("approx.mult_cache.lut_builds", 1);
    luts_.emplace(name, built);
    return built;
}

std::shared_ptr<const core::GradLut> MultiplierCache::grad(
    const std::string& name, core::GradientMode mode, unsigned hws) {
    const unsigned resolved = resolve_hws(name, hws);
    const std::string key = name + '\0' +
                            std::string(core::gradient_mode_name(mode)) + '\0' +
                            std::to_string(resolved);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = grads_.find(key);
        if (it != grads_.end()) {
            ++stats_.hits;
            AMRET_OBS_COUNT("approx.mult_cache.hits", 1);
            return it->second;
        }
    }
    // Build outside the cache lock: gradient tables are big and the product
    // LUT fetch below re-enters lut().
    const auto product = lut(name);
    auto built = std::make_shared<const core::GradLut>(
        core::build_grad(*product, mode, resolved));
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = grads_.emplace(key, std::move(built));
    if (inserted) {
        ++stats_.grad_builds;
        AMRET_OBS_COUNT("approx.mult_cache.grad_builds", 1);
    }
    return it->second;
}

MultiplierConfig MultiplierCache::config(const LayerChoice& choice) {
    MultiplierConfig config;
    config.name = choice.multiplier;
    config.hws = resolve_hws(choice.multiplier, choice.hws);
    config.grad_mode = choice.grad;
    config.lut = lut(choice.multiplier);
    config.grad = grad(choice.multiplier, choice.grad, config.hws);
    return config;
}

unsigned MultiplierCache::resolve_hws(const std::string& name, unsigned hws) const {
    if (hws != 0) return hws;
    auto& reg = appmult::Registry::instance(); // invariant-ok: MultiplierCache is the assignment path
    return reg.info(name).default_hws;
}

MultiplierCache::Stats MultiplierCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void MultiplierCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    luts_.clear();
    grads_.clear();
    stats_ = Stats{};
}

// ---------------------------------------------------- model application ----

std::size_t apply_assignment(nn::Module& root,
                             const MultiplierAssignment& assignment,
                             ComputeMode mode) {
    if (assignment.empty())
        throw std::invalid_argument("apply_assignment: empty assignment");
    auto& cache = MultiplierCache::instance();
    std::size_t index = 0;
    root.visit([&](nn::Module& m) {
        if (auto* conv = dynamic_cast<ApproxConv2d*>(&m)) {
            conv->set_multiplier(cache.config(assignment.at(index++)));
            conv->set_mode(mode);
        } else if (auto* linear = dynamic_cast<ApproxLinear*>(&m)) {
            linear->set_multiplier(cache.config(assignment.at(index++)));
            linear->set_mode(mode);
        } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(&m)) {
            dw->set_multiplier(cache.config(assignment.at(index++)));
            dw->set_mode(mode);
        }
    });
    return index;
}

std::size_t count_approx_layers(nn::Module& root) {
    std::size_t count = 0;
    root.visit([&](nn::Module& m) {
        if (dynamic_cast<ApproxConv2d*>(&m) != nullptr ||
            dynamic_cast<ApproxLinear*>(&m) != nullptr ||
            dynamic_cast<DepthwiseConv2d*>(&m) != nullptr)
            ++count;
    });
    return count;
}

} // namespace amret::approx
