#include "approx/depthwise.hpp"

#include "runtime/parallel.hpp"

#include <cassert>

namespace amret::approx {

using tensor::ConvGeom;
using tensor::Shape;
using tensor::Tensor;

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad,
                                 util::Rng& rng)
    : weight("dwconv.weight",
             Tensor::he_init(Shape{channels, kernel, kernel}, kernel * kernel, rng)),
      bias("dwconv.bias", Tensor::zeros(Shape{channels})),
      channels_(channels), kernel_(kernel), stride_(stride), pad_(pad) {}

void DepthwiseConv2d::set_multiplier(MultiplierConfig config) {
    assert(config.valid());
    mult_ = std::move(config);
}

void DepthwiseConv2d::collect_params(std::vector<nn::Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

void DepthwiseConv2d::save_extra_state(std::vector<float>& out) const {
    out.push_back(act_observer_.lo());
    out.push_back(act_observer_.hi());
    out.push_back(act_observer_.initialized() ? 1.0f : 0.0f);
}

void DepthwiseConv2d::load_extra_state(const float*& cursor) {
    const float lo = *cursor++;
    const float hi = *cursor++;
    const bool init = *cursor++ != 0.0f;
    act_observer_.set_range(lo, hi, init);
}

namespace {

/// im2col of a single channel of x into rows of `out` starting at row0.
void channel_im2col(const Tensor& x, std::int64_t channel, const ConvGeom& geom,
                    Tensor& out, std::int64_t row0) {
    const std::int64_t oh = geom.out_h(), ow = geom.out_w();
    const std::int64_t patch = geom.kernel * geom.kernel;
    const std::int64_t total_ch = x.dim(1);
    for (std::int64_t n = 0; n < geom.batch; ++n) {
        const float* px = x.data() + (n * total_ch + channel) * geom.in_h * geom.in_w;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
                float* row = out.data() + (row0 + (n * oh + oy) * ow + ox) * patch;
                std::int64_t idx = 0;
                for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
                    const std::int64_t iy = oy * geom.stride + ky - geom.pad;
                    for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++idx) {
                        const std::int64_t ix = ox * geom.stride + kx - geom.pad;
                        row[idx] = (iy >= 0 && iy < geom.in_h && ix >= 0 &&
                                    ix < geom.in_w)
                                       ? px[iy * geom.in_w + ix]
                                       : 0.0f;
                    }
                }
            }
        }
    }
}

} // namespace

Tensor DepthwiseConv2d::forward(const Tensor& x) {
    assert(x.rank() == 4 && x.dim(1) == channels_);
    batch_ = x.dim(0);
    geom_ = ConvGeom{batch_, 1, x.dim(2), x.dim(3), kernel_, stride_, pad_};
    const std::int64_t positions = geom_.positions();
    const std::int64_t patch = kernel_ * kernel_;

    cached_cols_ = Tensor(Shape{channels_ * positions, patch});
    // Each channel fills its own row block [c * positions, (c+1) * positions).
    runtime::parallel_for(0, channels_, 1, [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c)
            channel_im2col(x, c, geom_, cached_cols_, c * positions);
    });

    return mode_ == ComputeMode::kFloat ? forward_float(x) : forward_quant(x);
}

Tensor DepthwiseConv2d::forward_float(const Tensor& x) {
    const std::int64_t positions = geom_.positions();
    const std::int64_t patch = kernel_ * kernel_;
    const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
    Tensor y(Shape{batch_, channels_, oh, ow});
    const std::int64_t spatial = oh * ow;
    runtime::parallel_for(0, channels_, 1, [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c) {
            const float* wrow = weight.value.data() + c * patch;
            for (std::int64_t p = 0; p < positions; ++p) {
                const float* row = cached_cols_.data() + (c * positions + p) * patch;
                float acc = bias.value[c];
                for (std::int64_t k = 0; k < patch; ++k) acc += wrow[k] * row[k];
                const std::int64_t n = p / spatial, s = p % spatial;
                y[(n * channels_ + c) * spatial + s] = acc;
            }
        }
    });
    (void)x;
    return y;
}

Tensor DepthwiseConv2d::forward_quant(const Tensor& x) {
    assert(mult_.valid() && "set_multiplier() before quantized forward");
    const unsigned bits = mult_.bits();
    const std::int64_t positions = geom_.positions();
    const std::int64_t patch = kernel_ * kernel_;

    const auto wparams =
        quant::choose_params(weight.value.min(), weight.value.max(), bits);
    cached_wq_ = quant::quantize_tensor(
        weight.value.reshaped(Shape{channels_, patch}), wparams);
    if (training_ || !act_observer_.initialized()) act_observer_.observe(x);
    const auto xparams = act_observer_.params(bits);
    cached_xq_ = quant::quantize_tensor(cached_cols_, xparams);

    const std::int32_t zw = static_cast<std::int32_t>(wparams.zero_point);
    const std::int32_t zx = static_cast<std::int32_t>(xparams.zero_point);
    const float ss = wparams.scale * xparams.scale;
    const std::int32_t* table = mult_.lut->table().data();

    const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
    const std::int64_t spatial = oh * ow;
    Tensor y(Shape{batch_, channels_, oh, ow});
    runtime::parallel_for(0, channels_, 1, [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c) {
            const std::uint16_t* wrow = cached_wq_.codes.data() + c * patch;
            std::int64_t sum_w = 0;
            for (std::int64_t k = 0; k < patch; ++k) sum_w += wrow[k];
            for (std::int64_t p = 0; p < positions; ++p) {
                const std::uint16_t* xrow =
                    cached_xq_.codes.data() + (c * positions + p) * patch;
                std::int64_t acc = 0, sum_x = 0;
                for (std::int64_t k = 0; k < patch; ++k) {
                    acc +=
                        table[(static_cast<std::uint32_t>(wrow[k]) << bits) | xrow[k]];
                    sum_x += xrow[k];
                }
                const std::int64_t corrected =
                    acc - static_cast<std::int64_t>(zx) * sum_w -
                    static_cast<std::int64_t>(zw) * sum_x +
                    patch * static_cast<std::int64_t>(zw) * zx;
                const std::int64_t n = p / spatial, s = p % spatial;
                y[(n * channels_ + c) * spatial + s] =
                    ss * static_cast<float>(corrected) + bias.value[c];
            }
        }
    });
    return y;
}

Tensor DepthwiseConv2d::backward(const Tensor& gy) {
    const std::int64_t positions = geom_.positions();
    const std::int64_t patch = kernel_ * kernel_;
    const std::int64_t spatial = geom_.out_h() * geom_.out_w();
    assert(gy.numel() == batch_ * channels_ * spatial);

    Tensor dcols(Shape{channels_ * positions, patch});
    const bool quantized = mode_ == ComputeMode::kQuantized;
    const float* grad_w_lut = quantized ? mult_.grad->dw_table().data() : nullptr;
    const float* grad_x_lut = quantized ? mult_.grad->dx_table().data() : nullptr;
    const unsigned bits = quantized ? mult_.bits() : 0;
    const float zw = quantized ? cached_wq_.params.zero_point : 0.0f;
    const float zx = quantized ? cached_xq_.params.zero_point : 0.0f;
    const float sw = quantized ? cached_wq_.params.scale : 0.0f;
    const float sx = quantized ? cached_xq_.params.scale : 0.0f;

    // All writes are per-channel slices (gw row, bias.grad[c], dcols rows),
    // so channels parallelize without any reduction.
    runtime::parallel_for(0, channels_, 1, [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
        float* gwrow = weight.grad.data() + c * patch;
        const float* wrow_f = weight.value.data() + c * patch;
        const std::uint16_t* wrow_q =
            quantized ? cached_wq_.codes.data() + c * patch : nullptr;
        for (std::int64_t p = 0; p < positions; ++p) {
            const std::int64_t n = p / spatial, s = p % spatial;
            const float g = gy[(n * channels_ + c) * spatial + s];
            bias.grad[c] += g;
            float* drow = dcols.data() + (c * positions + p) * patch;
            if (!quantized) {
                const float* crow = cached_cols_.data() + (c * positions + p) * patch;
                for (std::int64_t k = 0; k < patch; ++k) {
                    gwrow[k] += g * crow[k];
                    drow[k] = g * wrow_f[k];
                }
            } else {
                const std::uint16_t* xrow =
                    cached_xq_.codes.data() + (c * positions + p) * patch;
                for (std::int64_t k = 0; k < patch; ++k) {
                    const std::uint32_t idx =
                        (static_cast<std::uint32_t>(wrow_q[k]) << bits) | xrow[k];
                    if (cached_wq_.in_range[static_cast<std::size_t>(c * patch + k)])
                        gwrow[k] += g * sx * (grad_w_lut[idx] - zx);
                    const bool x_ok = cached_xq_.in_range[static_cast<std::size_t>(
                        (c * positions + p) * patch + k)];
                    drow[k] = x_ok ? g * sw * (grad_x_lut[idx] - zw) : 0.0f;
                }
            }
        }
    }
    });

    // Fold dcols back per channel; each channel writes its own gx slices.
    Tensor gx(Shape{batch_, channels_, geom_.in_h, geom_.in_w});
    runtime::parallel_for(0, channels_, 1, [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c) {
            Tensor chan_cols(Shape{positions, patch});
            std::copy(dcols.data() + c * positions * patch,
                      dcols.data() + (c + 1) * positions * patch, chan_cols.data());
            const Tensor chan_gx = tensor::col2im(chan_cols, geom_); // (N,1,H,W)
            for (std::int64_t n = 0; n < batch_; ++n) {
                const float* src = chan_gx.data() + n * geom_.in_h * geom_.in_w;
                float* dst =
                    gx.data() + (n * channels_ + c) * geom_.in_h * geom_.in_w;
                std::copy(src, src + geom_.in_h * geom_.in_w, dst);
            }
        }
    });
    return gx;
}

} // namespace amret::approx
