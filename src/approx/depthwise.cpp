#include "approx/depthwise.hpp"

#include "kernels/im2col.hpp"
#include "kernels/lut_kernels.hpp"
#include "runtime/parallel.hpp"

#include <algorithm>
#include <cassert>

namespace amret::approx {

using tensor::ConvGeom;
using tensor::Shape;
using tensor::Tensor;
namespace tune = kernels::tune;

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad,
                                 util::Rng& rng)
    : weight("dwconv.weight",
             Tensor::he_init(Shape{channels, kernel, kernel}, kernel * kernel, rng)),
      bias("dwconv.bias", Tensor::zeros(Shape{channels})),
      channels_(channels), kernel_(kernel), stride_(stride), pad_(pad) {}

void DepthwiseConv2d::set_multiplier(MultiplierConfig config) {
    assert(config.valid());
    mult_ = std::move(config);
}

void DepthwiseConv2d::collect_params(std::vector<nn::Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

void DepthwiseConv2d::save_extra_state(std::vector<float>& out) const {
    out.push_back(act_observer_.lo());
    out.push_back(act_observer_.hi());
    out.push_back(act_observer_.initialized() ? 1.0f : 0.0f);
}

void DepthwiseConv2d::load_extra_state(const float*& cursor) {
    const float lo = *cursor++;
    const float hi = *cursor++;
    const bool init = *cursor++ != 0.0f;
    act_observer_.set_range(lo, hi, init);
}

nn::BatchCoupling DepthwiseConv2d::coupling() const {
    return mode_ == ComputeMode::kQuantized && training_
               ? nn::BatchCoupling::kStatsCoupled
               : nn::BatchCoupling::kSampleLocal;
}

void DepthwiseConv2d::batch_pre_pass(const Tensor& x) {
    if (mode_ == ComputeMode::kQuantized &&
        (training_ || !act_observer_.initialized()))
        act_observer_.observe(x);
}

std::int64_t DepthwiseConv2d::last_forward_macs(const nn::Context& ctx) const {
    const State* st = ctx.peek<State>(*this);
    if (!st || st->geom.batch == 0) return 0;
    return st->geom.positions() * kernel_ * kernel_ * channels_;
}

Tensor DepthwiseConv2d::forward(const Tensor& x, nn::Context& ctx) {
    assert(x.rank() == 4 && x.dim(1) == channels_);
    State& st = ctx.state<State>(*this);
    st.batch = x.dim(0);
    st.geom = ConvGeom{st.batch, 1, x.dim(2), x.dim(3), kernel_, stride_, pad_};
    const std::int64_t positions = st.geom.positions();
    const std::int64_t patch = kernel_ * kernel_;

    // New allocation epoch; the columns (and quant-mode codes/masks below)
    // stay valid through the matching backward.
    st.ws.reset();
    st.cols = st.ws.alloc<float>(channels_ * positions * patch);
    float* cols = st.cols;
    // Each channel fills its own row block [c * positions, (c+1) * positions).
    runtime::parallel_for(0, channels_, tune::kGrainChannel,
                          [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c)
            kernels::im2col_channel(x.data(), channels_, c, st.geom,
                                    cols + c * positions * patch);
    });

    return mode_ == ComputeMode::kFloat ? forward_float(x, st)
                                        : forward_quant(x, st, ctx);
}

Tensor DepthwiseConv2d::forward_float(const Tensor& x, State& st) {
    const std::int64_t positions = st.geom.positions();
    const std::int64_t patch = kernel_ * kernel_;
    const std::int64_t oh = st.geom.out_h(), ow = st.geom.out_w();
    Tensor y(Shape{st.batch, channels_, oh, ow});
    const std::int64_t spatial = oh * ow;
    runtime::parallel_for(0, channels_, tune::kGrainChannel,
                          [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c) {
            const float* wrow = weight.value.data() + c * patch;
            for (std::int64_t p = 0; p < positions; ++p) {
                const float* row = st.cols + (c * positions + p) * patch;
                float acc = bias.value[c];
                for (std::int64_t k = 0; k < patch; ++k) acc += wrow[k] * row[k];
                const std::int64_t n = p / spatial, s = p % spatial;
                y[(n * channels_ + c) * spatial + s] = acc;
            }
        }
    });
    (void)x;
    return y;
}

Tensor DepthwiseConv2d::forward_quant(const Tensor& x, State& st,
                                      nn::Context& ctx) {
    assert(mult_.valid() && "set_multiplier() before quantized forward");
    const unsigned bits = mult_.bits();
    const std::int64_t positions = st.geom.positions();
    const std::int64_t patch = kernel_ * kernel_;

    const auto wparams =
        quant::choose_params(weight.value.min(), weight.value.max(), bits);
    st.wq = kernels::quantize_into(weight.value.data(), channels_ * patch, wparams,
                                   st.ws);
    if ((training_ && !ctx.observers_frozen()) || !act_observer_.initialized())
        act_observer_.observe(x);
    const auto xparams = act_observer_.params(bits);
    st.xq = kernels::quantize_into(st.cols, channels_ * positions * patch, xparams,
                                   st.ws);

    // Each channel is an independent O = 1 LUT GEMM over its column block.
    // Scratch is preallocated per chunk (channels here, grain 1) so the
    // concurrent chunks never touch the single-threaded workspace.
    const kernels::TileConfig tile;
    const std::int64_t chunks =
        runtime::chunk_count(0, channels_, tune::kGrainChannel);
    std::int64_t* sum_w_buf = st.ws.alloc<std::int64_t>(chunks);
    std::int64_t* sum_x_buf = st.ws.alloc<std::int64_t>(chunks * positions);
    std::int64_t* acc_buf = st.ws.alloc<std::int64_t>(chunks * tile.acc_elems());
    float* po_buf = st.ws.alloc<float>(chunks * positions);

    const std::int64_t oh = st.geom.out_h(), ow = st.geom.out_w();
    const std::int64_t spatial = oh * ow;
    Tensor y(Shape{st.batch, channels_, oh, ow});
    runtime::parallel_for_chunks(0, channels_, tune::kGrainChannel,
                                 [&](std::int64_t cb, std::int64_t ce,
                                     std::size_t chunk) {
        const auto ci = static_cast<std::int64_t>(chunk);
        kernels::LutGemmScratch scratch{sum_w_buf + ci,
                                        sum_x_buf + ci * positions,
                                        acc_buf + ci * tile.acc_elems()};
        float* po = po_buf + ci * positions;
        for (std::int64_t c = cb; c < ce; ++c) {
            kernels::LutGemmArgs args;
            args.bits = bits;
            args.lut = mult_.lut->table().data();
            args.wq = st.wq.codes + c * patch;
            args.xq = st.xq.codes + c * positions * patch;
            args.o = 1;
            args.p = positions;
            args.k = patch;
            args.scale_w = wparams.scale;
            args.scale_x = xparams.scale;
            args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
            args.zero_x = static_cast<std::int32_t>(xparams.zero_point);
            kernels::lut_forward_serial(args, bias.value.data() + c, po, tile,
                                        scratch);
            for (std::int64_t p = 0; p < positions; ++p) {
                const std::int64_t n = p / spatial, s = p % spatial;
                y[(n * channels_ + c) * spatial + s] = po[p];
            }
        }
    });
    return y;
}

Tensor DepthwiseConv2d::backward(const Tensor& gy, nn::Context& ctx) {
    State& st = ctx.state<State>(*this);
    const std::int64_t positions = st.geom.positions();
    const std::int64_t patch = kernel_ * kernel_;
    const std::int64_t spatial = st.geom.out_h() * st.geom.out_w();
    const std::int64_t image = st.geom.in_h * st.geom.in_w;
    assert(gy.numel() == st.batch * channels_ * spatial);

    float* dcols = st.ws.alloc<float>(channels_ * positions * patch);
    const bool quantized = mode_ == ComputeMode::kQuantized;
    const float* grad_w_lut = quantized ? mult_.grad->dw_table().data() : nullptr;
    const float* grad_x_lut = quantized ? mult_.grad->dx_table().data() : nullptr;
    const unsigned bits = quantized ? mult_.bits() : 0;
    const float zw = quantized ? st.wq.params.zero_point : 0.0f;
    const float zx = quantized ? st.xq.params.zero_point : 0.0f;
    const float sw = quantized ? st.wq.params.scale : 0.0f;
    const float sx = quantized ? st.xq.params.scale : 0.0f;

    Tensor& wgrad = ctx.grad(weight);
    Tensor& bgrad = ctx.grad(bias);

    // The gradient loop stays fused (gw / bias / dcols in one pass) rather
    // than re-seating on the generic lut_backward: the generic kernel skips
    // zero upstream gradients, while this loop writes drow[k] even for
    // g == 0 — folding through col2im, that distinction can surface as a
    // signed-zero difference, and the golden tests pin bitwise identity.
    // All writes are per-channel slices (gw row, bias grad[c], dcols rows),
    // so channels parallelize without any reduction.
    runtime::parallel_for(0, channels_, tune::kGrainChannel,
                          [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
        float* gwrow = wgrad.data() + c * patch;
        const float* wrow_f = weight.value.data() + c * patch;
        const std::uint16_t* wrow_q = quantized ? st.wq.codes + c * patch : nullptr;
        for (std::int64_t p = 0; p < positions; ++p) {
            const std::int64_t n = p / spatial, s = p % spatial;
            const float g = gy[(n * channels_ + c) * spatial + s];
            bgrad[c] += g;
            float* drow = dcols + (c * positions + p) * patch;
            if (!quantized) {
                const float* crow = st.cols + (c * positions + p) * patch;
                for (std::int64_t k = 0; k < patch; ++k) {
                    gwrow[k] += g * crow[k];
                    drow[k] = g * wrow_f[k];
                }
            } else {
                const std::uint16_t* xrow = st.xq.codes + (c * positions + p) * patch;
                for (std::int64_t k = 0; k < patch; ++k) {
                    const std::uint32_t idx =
                        (static_cast<std::uint32_t>(wrow_q[k]) << bits) | xrow[k];
                    if (st.wq.in_range[c * patch + k])
                        gwrow[k] += g * sx * (grad_w_lut[idx] - zx);
                    const bool x_ok = st.xq.in_range[(c * positions + p) * patch + k];
                    drow[k] = x_ok ? g * sw * (grad_x_lut[idx] - zw) : 0.0f;
                }
            }
        }
    }
    });

    // Fold dcols back per channel; each channel folds its contiguous column
    // block into its own scratch image and copies the result into its gx
    // slices (disjoint writes).
    const std::int64_t chunks =
        runtime::chunk_count(0, channels_, tune::kGrainChannel);
    float* fold_buf = st.ws.alloc<float>(chunks * st.batch * image);
    Tensor gx(Shape{st.batch, channels_, st.geom.in_h, st.geom.in_w});
    const std::int64_t batch = st.batch;
    runtime::parallel_for_chunks(0, channels_, tune::kGrainChannel,
                                 [&](std::int64_t cb, std::int64_t ce,
                                     std::size_t chunk) {
        float* chan_gx = fold_buf + static_cast<std::int64_t>(chunk) * batch * image;
        for (std::int64_t c = cb; c < ce; ++c) {
            std::fill(chan_gx, chan_gx + batch * image, 0.0f);
            kernels::col2im(dcols + c * positions * patch, st.geom, chan_gx);
            for (std::int64_t n = 0; n < batch; ++n) {
                const float* src = chan_gx + n * image;
                float* dst = gx.data() + (n * channels_ + c) * image;
                std::copy(src, src + image, dst);
            }
        }
    });
    return gx;
}

} // namespace amret::approx
