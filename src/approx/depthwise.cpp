#include "approx/depthwise.hpp"

#include "kernels/im2col.hpp"
#include "kernels/lut_kernels.hpp"
#include "runtime/parallel.hpp"

#include <algorithm>
#include <cassert>

namespace amret::approx {

using tensor::ConvGeom;
using tensor::Shape;
using tensor::Tensor;
namespace tune = kernels::tune;

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad,
                                 util::Rng& rng)
    : weight("dwconv.weight",
             Tensor::he_init(Shape{channels, kernel, kernel}, kernel * kernel, rng)),
      bias("dwconv.bias", Tensor::zeros(Shape{channels})),
      channels_(channels), kernel_(kernel), stride_(stride), pad_(pad) {}

void DepthwiseConv2d::set_multiplier(MultiplierConfig config) {
    assert(config.valid());
    mult_ = std::move(config);
}

void DepthwiseConv2d::collect_params(std::vector<nn::Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

void DepthwiseConv2d::save_extra_state(std::vector<float>& out) const {
    out.push_back(act_observer_.lo());
    out.push_back(act_observer_.hi());
    out.push_back(act_observer_.initialized() ? 1.0f : 0.0f);
}

void DepthwiseConv2d::load_extra_state(const float*& cursor) {
    const float lo = *cursor++;
    const float hi = *cursor++;
    const bool init = *cursor++ != 0.0f;
    act_observer_.set_range(lo, hi, init);
}

Tensor DepthwiseConv2d::forward(const Tensor& x) {
    assert(x.rank() == 4 && x.dim(1) == channels_);
    batch_ = x.dim(0);
    geom_ = ConvGeom{batch_, 1, x.dim(2), x.dim(3), kernel_, stride_, pad_};
    const std::int64_t positions = geom_.positions();
    const std::int64_t patch = kernel_ * kernel_;

    // New allocation epoch; the columns (and quant-mode codes/masks below)
    // stay valid through the matching backward.
    ws_.reset();
    cols_ = ws_.alloc<float>(channels_ * positions * patch);
    // Each channel fills its own row block [c * positions, (c+1) * positions).
    runtime::parallel_for(0, channels_, tune::kGrainChannel,
                          [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c)
            kernels::im2col_channel(x.data(), channels_, c, geom_,
                                    cols_ + c * positions * patch);
    });

    return mode_ == ComputeMode::kFloat ? forward_float(x) : forward_quant(x);
}

Tensor DepthwiseConv2d::forward_float(const Tensor& x) {
    const std::int64_t positions = geom_.positions();
    const std::int64_t patch = kernel_ * kernel_;
    const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
    Tensor y(Shape{batch_, channels_, oh, ow});
    const std::int64_t spatial = oh * ow;
    runtime::parallel_for(0, channels_, tune::kGrainChannel,
                          [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c) {
            const float* wrow = weight.value.data() + c * patch;
            for (std::int64_t p = 0; p < positions; ++p) {
                const float* row = cols_ + (c * positions + p) * patch;
                float acc = bias.value[c];
                for (std::int64_t k = 0; k < patch; ++k) acc += wrow[k] * row[k];
                const std::int64_t n = p / spatial, s = p % spatial;
                y[(n * channels_ + c) * spatial + s] = acc;
            }
        }
    });
    (void)x;
    return y;
}

Tensor DepthwiseConv2d::forward_quant(const Tensor& x) {
    assert(mult_.valid() && "set_multiplier() before quantized forward");
    const unsigned bits = mult_.bits();
    const std::int64_t positions = geom_.positions();
    const std::int64_t patch = kernel_ * kernel_;

    const auto wparams =
        quant::choose_params(weight.value.min(), weight.value.max(), bits);
    wq_ = kernels::quantize_into(weight.value.data(), channels_ * patch, wparams,
                                 ws_);
    if (training_ || !act_observer_.initialized()) act_observer_.observe(x);
    const auto xparams = act_observer_.params(bits);
    xq_ = kernels::quantize_into(cols_, channels_ * positions * patch, xparams,
                                 ws_);

    // Each channel is an independent O = 1 LUT GEMM over its column block.
    // Scratch is preallocated per chunk (channels here, grain 1) so the
    // concurrent chunks never touch the single-threaded workspace.
    const kernels::TileConfig tile;
    const std::int64_t chunks =
        runtime::chunk_count(0, channels_, tune::kGrainChannel);
    std::int64_t* sum_w_buf = ws_.alloc<std::int64_t>(chunks);
    std::int64_t* sum_x_buf = ws_.alloc<std::int64_t>(chunks * positions);
    std::int64_t* acc_buf = ws_.alloc<std::int64_t>(chunks * tile.acc_elems());
    float* po_buf = ws_.alloc<float>(chunks * positions);

    const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
    const std::int64_t spatial = oh * ow;
    Tensor y(Shape{batch_, channels_, oh, ow});
    runtime::parallel_for_chunks(0, channels_, tune::kGrainChannel,
                                 [&](std::int64_t cb, std::int64_t ce,
                                     std::size_t chunk) {
        const auto ci = static_cast<std::int64_t>(chunk);
        kernels::LutGemmScratch scratch{sum_w_buf + ci,
                                        sum_x_buf + ci * positions,
                                        acc_buf + ci * tile.acc_elems()};
        float* po = po_buf + ci * positions;
        for (std::int64_t c = cb; c < ce; ++c) {
            kernels::LutGemmArgs args;
            args.bits = bits;
            args.lut = mult_.lut->table().data();
            args.wq = wq_.codes + c * patch;
            args.xq = xq_.codes + c * positions * patch;
            args.o = 1;
            args.p = positions;
            args.k = patch;
            args.scale_w = wparams.scale;
            args.scale_x = xparams.scale;
            args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
            args.zero_x = static_cast<std::int32_t>(xparams.zero_point);
            kernels::lut_forward_serial(args, bias.value.data() + c, po, tile,
                                        scratch);
            for (std::int64_t p = 0; p < positions; ++p) {
                const std::int64_t n = p / spatial, s = p % spatial;
                y[(n * channels_ + c) * spatial + s] = po[p];
            }
        }
    });
    return y;
}

Tensor DepthwiseConv2d::backward(const Tensor& gy) {
    const std::int64_t positions = geom_.positions();
    const std::int64_t patch = kernel_ * kernel_;
    const std::int64_t spatial = geom_.out_h() * geom_.out_w();
    const std::int64_t image = geom_.in_h * geom_.in_w;
    assert(gy.numel() == batch_ * channels_ * spatial);

    float* dcols = ws_.alloc<float>(channels_ * positions * patch);
    const bool quantized = mode_ == ComputeMode::kQuantized;
    const float* grad_w_lut = quantized ? mult_.grad->dw_table().data() : nullptr;
    const float* grad_x_lut = quantized ? mult_.grad->dx_table().data() : nullptr;
    const unsigned bits = quantized ? mult_.bits() : 0;
    const float zw = quantized ? wq_.params.zero_point : 0.0f;
    const float zx = quantized ? xq_.params.zero_point : 0.0f;
    const float sw = quantized ? wq_.params.scale : 0.0f;
    const float sx = quantized ? xq_.params.scale : 0.0f;

    // The gradient loop stays fused (gw / bias / dcols in one pass) rather
    // than re-seating on the generic lut_backward: the generic kernel skips
    // zero upstream gradients, while this loop writes drow[k] even for
    // g == 0 — folding through col2im, that distinction can surface as a
    // signed-zero difference, and the golden tests pin bitwise identity.
    // All writes are per-channel slices (gw row, bias.grad[c], dcols rows),
    // so channels parallelize without any reduction.
    runtime::parallel_for(0, channels_, tune::kGrainChannel,
                          [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
        float* gwrow = weight.grad.data() + c * patch;
        const float* wrow_f = weight.value.data() + c * patch;
        const std::uint16_t* wrow_q = quantized ? wq_.codes + c * patch : nullptr;
        for (std::int64_t p = 0; p < positions; ++p) {
            const std::int64_t n = p / spatial, s = p % spatial;
            const float g = gy[(n * channels_ + c) * spatial + s];
            bias.grad[c] += g;
            float* drow = dcols + (c * positions + p) * patch;
            if (!quantized) {
                const float* crow = cols_ + (c * positions + p) * patch;
                for (std::int64_t k = 0; k < patch; ++k) {
                    gwrow[k] += g * crow[k];
                    drow[k] = g * wrow_f[k];
                }
            } else {
                const std::uint16_t* xrow = xq_.codes + (c * positions + p) * patch;
                for (std::int64_t k = 0; k < patch; ++k) {
                    const std::uint32_t idx =
                        (static_cast<std::uint32_t>(wrow_q[k]) << bits) | xrow[k];
                    if (wq_.in_range[c * patch + k])
                        gwrow[k] += g * sx * (grad_w_lut[idx] - zx);
                    const bool x_ok = xq_.in_range[(c * positions + p) * patch + k];
                    drow[k] = x_ok ? g * sw * (grad_x_lut[idx] - zw) : 0.0f;
                }
            }
        }
    }
    });

    // Fold dcols back per channel; each channel folds its contiguous column
    // block into its own scratch image and copies the result into its gx
    // slices (disjoint writes).
    const std::int64_t chunks =
        runtime::chunk_count(0, channels_, tune::kGrainChannel);
    float* fold_buf = ws_.alloc<float>(chunks * batch_ * image);
    Tensor gx(Shape{batch_, channels_, geom_.in_h, geom_.in_w});
    runtime::parallel_for_chunks(0, channels_, tune::kGrainChannel,
                                 [&](std::int64_t cb, std::int64_t ce,
                                     std::size_t chunk) {
        float* chan_gx = fold_buf + static_cast<std::int64_t>(chunk) * batch_ * image;
        for (std::int64_t c = cb; c < ce; ++c) {
            std::fill(chan_gx, chan_gx + batch_ * image, 0.0f);
            kernels::col2im(dcols + c * positions * patch, geom_, chan_gx);
            for (std::int64_t n = 0; n < batch_; ++n) {
                const float* src = chan_gx + n * image;
                float* dst = gx.data() + (n * channels_ + c) * image;
                std::copy(src, src + image, dst);
            }
        }
    });
    return gx;
}

} // namespace amret::approx
