#include "approx/approx_conv.hpp"

#include "approx/depthwise.hpp"
#include "kernels/im2col.hpp"
#include "kernels/lut_kernels.hpp"
#include "kernels/tuning.hpp"
#include "runtime/parallel.hpp"

#include <cassert>

namespace amret::approx {

using tensor::ConvGeom;
using tensor::Shape;
using tensor::Tensor;
namespace tune = kernels::tune;

MultiplierConfig MultiplierConfig::exact_ste(unsigned bits) {
    MultiplierConfig config;
    config.lut = std::make_shared<appmult::AppMultLut>(appmult::AppMultLut::exact(bits));
    config.grad = std::make_shared<core::GradLut>(core::build_ste_grad(bits));
    return config;
}

// ------------------------------------------------------------ ApproxConv2d

ApproxConv2d::ApproxConv2d(std::int64_t in_ch, std::int64_t out_ch,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, util::Rng& rng)
    : weight("conv.weight", Tensor::he_init(Shape{out_ch, in_ch, kernel, kernel},
                                            in_ch * kernel * kernel, rng)),
      bias("conv.bias", Tensor::zeros(Shape{out_ch})),
      in_ch_(in_ch), out_ch_(out_ch), kernel_(kernel), stride_(stride), pad_(pad) {}

void ApproxConv2d::set_multiplier(MultiplierConfig config) {
    assert(config.valid());
    mult_ = std::move(config);
}

void ApproxConv2d::collect_params(std::vector<nn::Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

void ApproxConv2d::save_extra_state(std::vector<float>& out) const {
    out.push_back(act_observer_.lo());
    out.push_back(act_observer_.hi());
    out.push_back(act_observer_.initialized() ? 1.0f : 0.0f);
}

void ApproxConv2d::load_extra_state(const float*& cursor) {
    const float lo = *cursor++;
    const float hi = *cursor++;
    const bool init = *cursor++ != 0.0f;
    act_observer_.set_range(lo, hi, init);
}

Tensor ApproxConv2d::forward(const Tensor& x) {
    assert(x.rank() == 4 && x.dim(1) == in_ch_);
    geom_ = ConvGeom{x.dim(0), in_ch_, x.dim(2), x.dim(3), kernel_, stride_, pad_};
    return mode_ == ComputeMode::kFloat ? forward_float(x) : forward_quant(x);
}

Tensor ApproxConv2d::backward(const Tensor& gy) {
    return mode_ == ComputeMode::kFloat ? backward_float(gy) : backward_quant(gy);
}

Tensor ApproxConv2d::forward_float(const Tensor& x) {
    cached_cols_ = kernels::im2col(x, geom_);
    const Tensor w2d = weight.value.reshaped(Shape{out_ch_, geom_.patch()});
    Tensor po = tensor::matmul_nt(cached_cols_, w2d); // (P, O)
    runtime::parallel_for(0, po.dim(0),
                          runtime::grain_for(po.dim(0), tune::kGrainCopyRows),
                          [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t pidx = pb; pidx < pe; ++pidx) {
            float* row = po.data() + pidx * out_ch_;
            for (std::int64_t c = 0; c < out_ch_; ++c) row[c] += bias.value[c];
        }
    });
    Tensor y(Shape{geom_.batch, out_ch_, geom_.out_h(), geom_.out_w()});
    kernels::scatter_positions(po.data(), geom_.batch, out_ch_, geom_.out_h(),
                               geom_.out_w(), y.data());
    return y;
}

Tensor ApproxConv2d::backward_float(const Tensor& gy) {
    Tensor gyp(Shape{geom_.positions(), out_ch_});
    kernels::gather_positions(gy.data(), geom_.batch, out_ch_, geom_.out_h(),
                              geom_.out_w(), gyp.data());
    // Bias gradient: column sums of gyp.
    kernels::accumulate_bias_grad(gyp.data(), geom_.positions(), out_ch_,
                                  bias.grad.data());
    // dW = gyp^T @ cols, reshaped to (O, C, K, K).
    Tensor dw2d = tensor::matmul_tn(gyp, cached_cols_); // (O, patch)
    weight.grad.add_(dw2d.reshaped(weight.value.shape()));
    // dx = col2im(gyp @ W).
    const Tensor w2d = weight.value.reshaped(Shape{out_ch_, geom_.patch()});
    const Tensor dcols = tensor::matmul(gyp, w2d); // (P, patch)
    return kernels::col2im(dcols, geom_);
}

Tensor ApproxConv2d::forward_quant(const Tensor& x) {
    assert(mult_.valid() && "set_multiplier() before quantized forward");
    const unsigned bits = mult_.bits();
    const std::int64_t patch = geom_.patch();

    // New allocation epoch: everything quantized-forward puts in the arena
    // (codes, masks, columns) stays valid through the matching backward.
    ws_.reset();

    // Weight quantization parameters track the current weights each step.
    quant::QuantParams wparams{};
    if (per_channel_) {
        // Each output channel (filter) gets its own affine parameters.
        wscale_per_o_ = ws_.alloc<float>(out_ch_);
        wzero_per_o_ = ws_.alloc<std::int32_t>(out_ch_);
        wq_ = kernels::quantize_weights_per_channel(weight.value.data(), out_ch_,
                                                    patch, bits, wscale_per_o_,
                                                    wzero_per_o_, ws_);
    } else {
        wparams = quant::choose_params(weight.value.min(), weight.value.max(), bits);
        wq_ = kernels::quantize_into(weight.value.data(), out_ch_ * patch, wparams,
                                     ws_);
    }

    // Activation parameters: EMA-calibrated during training (standard fake
    // quantization); frozen running range in eval.
    if (training_ || !act_observer_.initialized()) act_observer_.observe(x);
    const quant::QuantParams xparams = act_observer_.params(bits);

    float* cols = ws_.alloc<float>(geom_.positions() * patch);
    kernels::im2col(x.data(), geom_, cols);
    xq_ = kernels::quantize_into(cols, geom_.positions() * patch, xparams, ws_);

    kernels::LutGemmArgs args;
    args.bits = bits;
    args.lut = mult_.lut->table().data();
    args.wq = wq_.codes;
    args.xq = xq_.codes;
    args.o = out_ch_;
    args.p = geom_.positions();
    args.k = patch;
    args.scale_x = xparams.scale;
    args.zero_x = static_cast<std::int32_t>(xparams.zero_point);
    if (per_channel_) {
        args.scale_w_per_o = wscale_per_o_;
        args.zero_w_per_o = wzero_per_o_;
    } else {
        args.scale_w = wparams.scale;
        args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
    }

    Tensor po(Shape{args.p, args.o});
    kernels::lut_forward(args, bias.value.data(), po.data(), ws_);
    Tensor y(Shape{geom_.batch, out_ch_, geom_.out_h(), geom_.out_w()});
    kernels::scatter_positions(po.data(), geom_.batch, out_ch_, geom_.out_h(),
                               geom_.out_w(), y.data());
    return y;
}

Tensor ApproxConv2d::backward_quant(const Tensor& gy) {
    const std::int64_t p = geom_.positions(), patch = geom_.patch();
    float* gyp = ws_.alloc<float>(p * out_ch_);
    kernels::gather_positions(gy.data(), geom_.batch, out_ch_, geom_.out_h(),
                              geom_.out_w(), gyp);
    kernels::accumulate_bias_grad(gyp, p, out_ch_, bias.grad.data());

    kernels::LutGemmArgs args;
    args.bits = mult_.bits();
    args.lut = mult_.lut->table().data();
    args.wq = wq_.codes;
    args.xq = xq_.codes;
    args.o = out_ch_;
    args.p = p;
    args.k = patch;
    args.scale_x = xq_.params.scale;
    args.zero_x = static_cast<std::int32_t>(xq_.params.zero_point);
    if (per_channel_) {
        args.scale_w_per_o = wscale_per_o_;
        args.zero_w_per_o = wzero_per_o_;
    } else {
        args.scale_w = wq_.params.scale;
        args.zero_w = static_cast<std::int32_t>(wq_.params.zero_point);
    }

    float* gw_raw = ws_.alloc<float>(args.o * args.k);
    float* gx_raw = ws_.alloc<float>(args.p * args.k);
    runtime::parallel_for(0, args.o * args.k,
                          runtime::grain_for(args.o * args.k,
                                             tune::kGrainElementwiseWide),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) gw_raw[i] = 0.0f;
    });
    runtime::parallel_for(0, args.p * args.k,
                          runtime::grain_for(args.p * args.k,
                                             tune::kGrainElementwiseWide),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) gx_raw[i] = 0.0f;
    });
    kernels::lut_backward(args, gyp, mult_.grad->dw_table().data(),
                          mult_.grad->dx_table().data(), gw_raw, gx_raw);

    // Eq. (9): fold in the quantizer derivative. dW/dw = 1/s_w inside the
    // clamp range (0 outside); dy/dY contributed s_w*s_x, so the weight
    // gradient scale is s_x. The activation gradient's s_w factor was folded
    // into gx_raw by the kernel (it varies per row in per-channel mode);
    // only the clamp mask remains.
    float* wg = weight.grad.data();
    runtime::parallel_for(0, args.o * args.k,
                          runtime::grain_for(args.o * args.k,
                                             tune::kGrainElementwise),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (wq_.in_range[i]) wg[i] += args.scale_x * gw_raw[i];
        }
    });
    runtime::parallel_for(0, args.p * args.k,
                          runtime::grain_for(args.p * args.k,
                                             tune::kGrainElementwise),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (!xq_.in_range[i]) gx_raw[i] = 0.0f;
        }
    });
    Tensor gx(Shape{geom_.batch, geom_.in_ch, geom_.in_h, geom_.in_w});
    kernels::col2im(gx_raw, geom_, gx.data());
    return gx;
}

// ----------------------------------------------------------- ApproxLinear

ApproxLinear::ApproxLinear(std::int64_t in_features, std::int64_t out_features,
                           util::Rng& rng)
    : weight("alinear.weight",
             Tensor::he_init(Shape{out_features, in_features}, in_features, rng)),
      bias("alinear.bias", Tensor::zeros(Shape{out_features})),
      in_features_(in_features), out_features_(out_features) {}

void ApproxLinear::set_multiplier(MultiplierConfig config) {
    assert(config.valid());
    mult_ = std::move(config);
}

void ApproxLinear::collect_params(std::vector<nn::Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

void ApproxLinear::save_extra_state(std::vector<float>& out) const {
    out.push_back(act_observer_.lo());
    out.push_back(act_observer_.hi());
    out.push_back(act_observer_.initialized() ? 1.0f : 0.0f);
}

void ApproxLinear::load_extra_state(const float*& cursor) {
    const float lo = *cursor++;
    const float hi = *cursor++;
    const bool init = *cursor++ != 0.0f;
    act_observer_.set_range(lo, hi, init);
}

Tensor ApproxLinear::forward(const Tensor& x) {
    assert(x.rank() == 2 && x.dim(1) == in_features_);
    cached_batch_ = x.dim(0);
    if (mode_ == ComputeMode::kFloat) {
        cached_x_ = x;
        Tensor y = tensor::matmul_nt(x, weight.value);
        for (std::int64_t i = 0; i < y.dim(0); ++i)
            for (std::int64_t j = 0; j < out_features_; ++j)
                y[i * out_features_ + j] += bias.value[j];
        return y;
    }

    assert(mult_.valid());
    const unsigned bits = mult_.bits();
    ws_.reset();
    const quant::QuantParams wparams =
        quant::choose_params(weight.value.min(), weight.value.max(), bits);
    wq_ = kernels::quantize_into(weight.value.data(),
                                 out_features_ * in_features_, wparams, ws_);
    if (training_ || !act_observer_.initialized()) act_observer_.observe(x);
    const quant::QuantParams xparams = act_observer_.params(bits);
    xq_ = kernels::quantize_into(x.data(), cached_batch_ * in_features_, xparams,
                                 ws_);

    kernels::LutGemmArgs args;
    args.bits = bits;
    args.lut = mult_.lut->table().data();
    args.wq = wq_.codes;
    args.xq = xq_.codes;
    args.o = out_features_;
    args.p = cached_batch_;
    args.k = in_features_;
    args.scale_w = wparams.scale;
    args.scale_x = xparams.scale;
    args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
    args.zero_x = static_cast<std::int32_t>(xparams.zero_point);

    Tensor y(Shape{args.p, args.o});
    kernels::lut_forward(args, bias.value.data(), y.data(), ws_);
    return y;
}

Tensor ApproxLinear::backward(const Tensor& gy) {
    assert(gy.rank() == 2 && gy.dim(0) == cached_batch_);
    kernels::accumulate_bias_grad(gy.data(), cached_batch_, out_features_,
                                  bias.grad.data());

    if (mode_ == ComputeMode::kFloat) {
        Tensor dw = tensor::matmul_tn(gy, cached_x_);
        weight.grad.add_(dw);
        return tensor::matmul(gy, weight.value);
    }

    kernels::LutGemmArgs args;
    args.bits = mult_.bits();
    args.lut = mult_.lut->table().data();
    args.wq = wq_.codes;
    args.xq = xq_.codes;
    args.o = out_features_;
    args.p = cached_batch_;
    args.k = in_features_;
    args.scale_w = wq_.params.scale;
    args.scale_x = xq_.params.scale;
    args.zero_w = static_cast<std::int32_t>(wq_.params.zero_point);
    args.zero_x = static_cast<std::int32_t>(xq_.params.zero_point);

    float* gw_raw = ws_.alloc<float>(args.o * args.k);
    runtime::parallel_for(0, args.o * args.k,
                          runtime::grain_for(args.o * args.k,
                                             tune::kGrainElementwiseWide),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) gw_raw[i] = 0.0f;
    });
    Tensor gx(Shape{args.p, args.k}); // zero-initialized
    kernels::lut_backward(args, gy.data(), mult_.grad->dw_table().data(),
                          mult_.grad->dx_table().data(), gw_raw, gx.data());

    float* wg = weight.grad.data();
    runtime::parallel_for(0, args.o * args.k,
                          runtime::grain_for(args.o * args.k,
                                             tune::kGrainElementwise),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (wq_.in_range[i]) wg[i] += args.scale_x * gw_raw[i];
        }
    });
    // The s_w factor of the activation gradient is folded in by the kernel.
    runtime::parallel_for(0, gx.numel(),
                          runtime::grain_for(gx.numel(), tune::kGrainElementwise),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (!xq_.in_range[i]) gx[i] = 0.0f;
        }
    });
    return gx;
}

// ------------------------------------------------------------- utilities

void configure_approx_layers(nn::Module& root, const MultiplierConfig& config,
                             ComputeMode mode) {
    root.visit([&](nn::Module& m) {
        if (auto* conv = dynamic_cast<ApproxConv2d*>(&m)) {
            conv->set_multiplier(config);
            conv->set_mode(mode);
        } else if (auto* linear = dynamic_cast<ApproxLinear*>(&m)) {
            linear->set_multiplier(config);
            linear->set_mode(mode);
        } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(&m)) {
            dw->set_multiplier(config);
            dw->set_mode(mode);
        }
    });
}

void set_gradient_luts(nn::Module& root, std::shared_ptr<const core::GradLut> grad) {
    root.visit([&](nn::Module& m) {
        if (auto* conv = dynamic_cast<ApproxConv2d*>(&m)) {
            MultiplierConfig config = conv->multiplier();
            config.grad = grad;
            conv->set_multiplier(std::move(config));
        } else if (auto* linear = dynamic_cast<ApproxLinear*>(&m)) {
            MultiplierConfig config = linear->multiplier();
            config.grad = grad;
            linear->set_multiplier(std::move(config));
        } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(&m)) {
            MultiplierConfig config = dw->multiplier();
            config.grad = grad;
            dw->set_multiplier(std::move(config));
        }
    });
}

} // namespace amret::approx
