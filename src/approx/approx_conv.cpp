#include "approx/approx_conv.hpp"

#include "approx/depthwise.hpp"
#include "approx/lut_gemm.hpp"
#include "runtime/parallel.hpp"

#include <cassert>

namespace amret::approx {

using tensor::ConvGeom;
using tensor::Shape;
using tensor::Tensor;

MultiplierConfig MultiplierConfig::exact_ste(unsigned bits) {
    MultiplierConfig config;
    config.lut = std::make_shared<appmult::AppMultLut>(appmult::AppMultLut::exact(bits));
    config.grad = std::make_shared<core::GradLut>(core::build_ste_grad(bits));
    return config;
}

// ------------------------------------------------------------ ApproxConv2d

ApproxConv2d::ApproxConv2d(std::int64_t in_ch, std::int64_t out_ch,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, util::Rng& rng)
    : weight("conv.weight", Tensor::he_init(Shape{out_ch, in_ch, kernel, kernel},
                                            in_ch * kernel * kernel, rng)),
      bias("conv.bias", Tensor::zeros(Shape{out_ch})),
      in_ch_(in_ch), out_ch_(out_ch), kernel_(kernel), stride_(stride), pad_(pad) {}

void ApproxConv2d::set_multiplier(MultiplierConfig config) {
    assert(config.valid());
    mult_ = std::move(config);
}

void ApproxConv2d::collect_params(std::vector<nn::Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

void ApproxConv2d::save_extra_state(std::vector<float>& out) const {
    out.push_back(act_observer_.lo());
    out.push_back(act_observer_.hi());
    out.push_back(act_observer_.initialized() ? 1.0f : 0.0f);
}

void ApproxConv2d::load_extra_state(const float*& cursor) {
    const float lo = *cursor++;
    const float hi = *cursor++;
    const bool init = *cursor++ != 0.0f;
    act_observer_.set_range(lo, hi, init);
}

namespace {

/// (P, O) position-major matrix -> (N, O, OH, OW) feature map.
Tensor scatter_positions(const Tensor& po, std::int64_t n, std::int64_t o,
                         std::int64_t oh, std::int64_t ow) {
    Tensor y(Shape{n, o, oh, ow});
    const std::int64_t spatial = oh * ow;
    runtime::parallel_for(0, n * spatial, runtime::grain_for(n * spatial, 64),
                          [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t p = pb; p < pe; ++p) {
            const std::int64_t i = p / spatial, s = p % spatial;
            const float* row = po.data() + p * o;
            for (std::int64_t c = 0; c < o; ++c)
                y[(i * o + c) * spatial + s] = row[c];
        }
    });
    return y;
}

/// (N, O, OH, OW) feature-map gradient -> (P, O) position-major matrix.
Tensor gather_positions(const Tensor& gy, std::int64_t n, std::int64_t o,
                        std::int64_t oh, std::int64_t ow) {
    Tensor gp(Shape{n * oh * ow, o});
    const std::int64_t spatial = oh * ow;
    runtime::parallel_for(0, n * spatial, runtime::grain_for(n * spatial, 64),
                          [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t p = pb; p < pe; ++p) {
            const std::int64_t i = p / spatial, s = p % spatial;
            float* row = gp.data() + p * o;
            for (std::int64_t c = 0; c < o; ++c)
                row[c] = gy[(i * o + c) * spatial + s];
        }
    });
    return gp;
}

/// Column sums of a (P, O) position-major gradient into \p bias_grad via the
/// deterministic per-chunk reduction (chunk boundaries depend only on P).
void accumulate_bias_grad(const Tensor& gyp, std::int64_t out_ch, float* bias_grad) {
    runtime::parallel_accumulate(
        0, gyp.dim(0), runtime::grain_for(gyp.dim(0), 16),
        static_cast<std::size_t>(out_ch),
        [&](std::int64_t pidx, float* acc) {
            const float* row = gyp.data() + pidx * out_ch;
            for (std::int64_t c = 0; c < out_ch; ++c) acc[c] += row[c];
        },
        bias_grad);
}

} // namespace

Tensor ApproxConv2d::forward(const Tensor& x) {
    assert(x.rank() == 4 && x.dim(1) == in_ch_);
    geom_ = ConvGeom{x.dim(0), in_ch_, x.dim(2), x.dim(3), kernel_, stride_, pad_};
    return mode_ == ComputeMode::kFloat ? forward_float(x) : forward_quant(x);
}

Tensor ApproxConv2d::backward(const Tensor& gy) {
    return mode_ == ComputeMode::kFloat ? backward_float(gy) : backward_quant(gy);
}

Tensor ApproxConv2d::forward_float(const Tensor& x) {
    cached_cols_ = tensor::im2col(x, geom_);
    const Tensor w2d = weight.value.reshaped(Shape{out_ch_, geom_.patch()});
    Tensor po = tensor::matmul_nt(cached_cols_, w2d); // (P, O)
    runtime::parallel_for(0, po.dim(0), runtime::grain_for(po.dim(0), 64),
                          [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t pidx = pb; pidx < pe; ++pidx) {
            float* row = po.data() + pidx * out_ch_;
            for (std::int64_t c = 0; c < out_ch_; ++c) row[c] += bias.value[c];
        }
    });
    return scatter_positions(po, geom_.batch, out_ch_, geom_.out_h(), geom_.out_w());
}

Tensor ApproxConv2d::backward_float(const Tensor& gy) {
    const Tensor gyp =
        gather_positions(gy, geom_.batch, out_ch_, geom_.out_h(), geom_.out_w());
    // Bias gradient: column sums of gyp.
    accumulate_bias_grad(gyp, out_ch_, bias.grad.data());
    // dW = gyp^T @ cols, reshaped to (O, C, K, K).
    Tensor dw2d = tensor::matmul_tn(gyp, cached_cols_); // (O, patch)
    weight.grad.add_(dw2d.reshaped(weight.value.shape()));
    // dx = col2im(gyp @ W).
    const Tensor w2d = weight.value.reshaped(Shape{out_ch_, geom_.patch()});
    const Tensor dcols = tensor::matmul(gyp, w2d); // (P, patch)
    return tensor::col2im(dcols, geom_);
}

Tensor ApproxConv2d::forward_quant(const Tensor& x) {
    assert(mult_.valid() && "set_multiplier() before quantized forward");
    const unsigned bits = mult_.bits();

    // Weight quantization parameters track the current weights each step.
    const std::int64_t patch = geom_.patch();
    quant::QuantParams wparams{};
    if (per_channel_) {
        // Each output channel (filter) gets its own affine parameters.
        wscale_per_o_.resize(static_cast<std::size_t>(out_ch_));
        wzero_per_o_.resize(static_cast<std::size_t>(out_ch_));
        cached_wq_.codes.resize(static_cast<std::size_t>(out_ch_ * patch));
        cached_wq_.in_range.resize(static_cast<std::size_t>(out_ch_ * patch));
        const float* w = weight.value.data();
        // Per-channel rows are independent: range scan + quantization of each
        // filter touch only that filter's slice of the caches.
        runtime::parallel_for(0, out_ch_, runtime::grain_for(out_ch_, 1),
                              [&](std::int64_t ob, std::int64_t oe) {
            for (std::int64_t o = ob; o < oe; ++o) {
                float lo = w[o * patch], hi = w[o * patch];
                for (std::int64_t k = 1; k < patch; ++k) {
                    lo = std::min(lo, w[o * patch + k]);
                    hi = std::max(hi, w[o * patch + k]);
                }
                const quant::QuantParams row = quant::choose_params(lo, hi, bits);
                wscale_per_o_[static_cast<std::size_t>(o)] = row.scale;
                wzero_per_o_[static_cast<std::size_t>(o)] =
                    static_cast<std::int32_t>(row.zero_point);
                for (std::int64_t k = 0; k < patch; ++k) {
                    const float v = w[o * patch + k];
                    cached_wq_.codes[static_cast<std::size_t>(o * patch + k)] =
                        static_cast<std::uint16_t>(row.quantize(v));
                    cached_wq_.in_range[static_cast<std::size_t>(o * patch + k)] =
                        row.in_range(v) ? 1 : 0;
                }
            }
        });
        cached_wq_.params = quant::choose_params(weight.value.min(),
                                                 weight.value.max(), bits);
    } else {
        wparams = quant::choose_params(weight.value.min(), weight.value.max(), bits);
        cached_wq_ =
            quant::quantize_tensor(weight.value.reshaped(Shape{out_ch_, patch}), wparams);
    }

    // Activation parameters: EMA-calibrated during training (standard fake
    // quantization); frozen running range in eval.
    quant::QuantParams xparams{};
    if (training_ || !act_observer_.initialized()) act_observer_.observe(x);
    xparams = act_observer_.params(bits);

    const Tensor cols = tensor::im2col(x, geom_);
    cached_xq_ = quant::quantize_tensor(cols, xparams);

    LutGemmArgs args;
    args.bits = bits;
    args.lut = mult_.lut->table().data();
    args.wq = cached_wq_.codes.data();
    args.xq = cached_xq_.codes.data();
    args.o = out_ch_;
    args.p = geom_.positions();
    args.k = patch;
    args.scale_x = xparams.scale;
    args.zero_x = static_cast<std::int32_t>(xparams.zero_point);
    if (per_channel_) {
        args.scale_w_per_o = wscale_per_o_.data();
        args.zero_w_per_o = wzero_per_o_.data();
    } else {
        args.scale_w = wparams.scale;
        args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
    }

    Tensor po(Shape{args.p, args.o});
    lut_forward(args, bias.value.data(), po.data());
    return scatter_positions(po, geom_.batch, out_ch_, geom_.out_h(), geom_.out_w());
}

Tensor ApproxConv2d::backward_quant(const Tensor& gy) {
    const Tensor gyp =
        gather_positions(gy, geom_.batch, out_ch_, geom_.out_h(), geom_.out_w());
    accumulate_bias_grad(gyp, out_ch_, bias.grad.data());

    LutGemmArgs args;
    args.bits = mult_.bits();
    args.lut = mult_.lut->table().data();
    args.wq = cached_wq_.codes.data();
    args.xq = cached_xq_.codes.data();
    args.o = out_ch_;
    args.p = geom_.positions();
    args.k = geom_.patch();
    args.scale_x = cached_xq_.params.scale;
    args.zero_x = static_cast<std::int32_t>(cached_xq_.params.zero_point);
    if (per_channel_) {
        args.scale_w_per_o = wscale_per_o_.data();
        args.zero_w_per_o = wzero_per_o_.data();
    } else {
        args.scale_w = cached_wq_.params.scale;
        args.zero_w = static_cast<std::int32_t>(cached_wq_.params.zero_point);
    }

    Tensor gw_raw(Shape{args.o, args.k});
    Tensor gx_raw(Shape{args.p, args.k});
    lut_backward(args, gyp.data(), mult_.grad->dw_table().data(),
                 mult_.grad->dx_table().data(), gw_raw.data(), gx_raw.data());

    // Eq. (9): fold in the quantizer derivative. dW/dw = 1/s_w inside the
    // clamp range (0 outside); dy/dY contributed s_w*s_x, so the weight
    // gradient scale is s_x. The activation gradient's s_w factor was folded
    // into gx_raw by the kernel (it varies per row in per-channel mode);
    // only the clamp mask remains.
    float* wg = weight.grad.data();
    runtime::parallel_for(0, gw_raw.numel(), runtime::grain_for(gw_raw.numel(), 256),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (cached_wq_.in_range[static_cast<std::size_t>(i)])
                wg[i] += args.scale_x * gw_raw[i];
        }
    });
    runtime::parallel_for(0, gx_raw.numel(), runtime::grain_for(gx_raw.numel(), 256),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (!cached_xq_.in_range[static_cast<std::size_t>(i)]) gx_raw[i] = 0.0f;
        }
    });
    return tensor::col2im(gx_raw, geom_);
}

// ----------------------------------------------------------- ApproxLinear

ApproxLinear::ApproxLinear(std::int64_t in_features, std::int64_t out_features,
                           util::Rng& rng)
    : weight("alinear.weight",
             Tensor::he_init(Shape{out_features, in_features}, in_features, rng)),
      bias("alinear.bias", Tensor::zeros(Shape{out_features})),
      in_features_(in_features), out_features_(out_features) {}

void ApproxLinear::set_multiplier(MultiplierConfig config) {
    assert(config.valid());
    mult_ = std::move(config);
}

void ApproxLinear::collect_params(std::vector<nn::Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

void ApproxLinear::save_extra_state(std::vector<float>& out) const {
    out.push_back(act_observer_.lo());
    out.push_back(act_observer_.hi());
    out.push_back(act_observer_.initialized() ? 1.0f : 0.0f);
}

void ApproxLinear::load_extra_state(const float*& cursor) {
    const float lo = *cursor++;
    const float hi = *cursor++;
    const bool init = *cursor++ != 0.0f;
    act_observer_.set_range(lo, hi, init);
}

Tensor ApproxLinear::forward(const Tensor& x) {
    assert(x.rank() == 2 && x.dim(1) == in_features_);
    cached_batch_ = x.dim(0);
    if (mode_ == ComputeMode::kFloat) {
        cached_x_ = x;
        Tensor y = tensor::matmul_nt(x, weight.value);
        for (std::int64_t i = 0; i < y.dim(0); ++i)
            for (std::int64_t j = 0; j < out_features_; ++j)
                y[i * out_features_ + j] += bias.value[j];
        return y;
    }

    assert(mult_.valid());
    const unsigned bits = mult_.bits();
    const quant::QuantParams wparams =
        quant::choose_params(weight.value.min(), weight.value.max(), bits);
    cached_wq_ = quant::quantize_tensor(weight.value, wparams);
    if (training_ || !act_observer_.initialized()) act_observer_.observe(x);
    const quant::QuantParams xparams = act_observer_.params(bits);
    cached_xq_ = quant::quantize_tensor(x, xparams);

    LutGemmArgs args;
    args.bits = bits;
    args.lut = mult_.lut->table().data();
    args.wq = cached_wq_.codes.data();
    args.xq = cached_xq_.codes.data();
    args.o = out_features_;
    args.p = cached_batch_;
    args.k = in_features_;
    args.scale_w = wparams.scale;
    args.scale_x = xparams.scale;
    args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
    args.zero_x = static_cast<std::int32_t>(xparams.zero_point);

    Tensor y(Shape{args.p, args.o});
    lut_forward(args, bias.value.data(), y.data());
    return y;
}

Tensor ApproxLinear::backward(const Tensor& gy) {
    assert(gy.rank() == 2 && gy.dim(0) == cached_batch_);
    accumulate_bias_grad(gy, out_features_, bias.grad.data());

    if (mode_ == ComputeMode::kFloat) {
        Tensor dw = tensor::matmul_tn(gy, cached_x_);
        weight.grad.add_(dw);
        return tensor::matmul(gy, weight.value);
    }

    LutGemmArgs args;
    args.bits = mult_.bits();
    args.lut = mult_.lut->table().data();
    args.wq = cached_wq_.codes.data();
    args.xq = cached_xq_.codes.data();
    args.o = out_features_;
    args.p = cached_batch_;
    args.k = in_features_;
    args.scale_w = cached_wq_.params.scale;
    args.scale_x = cached_xq_.params.scale;
    args.zero_w = static_cast<std::int32_t>(cached_wq_.params.zero_point);
    args.zero_x = static_cast<std::int32_t>(cached_xq_.params.zero_point);

    Tensor gw_raw(Shape{args.o, args.k});
    Tensor gx(Shape{args.p, args.k});
    lut_backward(args, gy.data(), mult_.grad->dw_table().data(),
                 mult_.grad->dx_table().data(), gw_raw.data(), gx.data());

    float* wg = weight.grad.data();
    runtime::parallel_for(0, gw_raw.numel(), runtime::grain_for(gw_raw.numel(), 256),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (cached_wq_.in_range[static_cast<std::size_t>(i)])
                wg[i] += args.scale_x * gw_raw[i];
        }
    });
    // The s_w factor of the activation gradient is folded in by the kernel.
    runtime::parallel_for(0, gx.numel(), runtime::grain_for(gx.numel(), 256),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (!cached_xq_.in_range[static_cast<std::size_t>(i)]) gx[i] = 0.0f;
        }
    });
    return gx;
}

// ------------------------------------------------------------- utilities

void configure_approx_layers(nn::Module& root, const MultiplierConfig& config,
                             ComputeMode mode) {
    root.visit([&](nn::Module& m) {
        if (auto* conv = dynamic_cast<ApproxConv2d*>(&m)) {
            conv->set_multiplier(config);
            conv->set_mode(mode);
        } else if (auto* linear = dynamic_cast<ApproxLinear*>(&m)) {
            linear->set_multiplier(config);
            linear->set_mode(mode);
        } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(&m)) {
            dw->set_multiplier(config);
            dw->set_mode(mode);
        }
    });
}

void set_gradient_luts(nn::Module& root, std::shared_ptr<const core::GradLut> grad) {
    root.visit([&](nn::Module& m) {
        if (auto* conv = dynamic_cast<ApproxConv2d*>(&m)) {
            MultiplierConfig config = conv->multiplier();
            config.grad = grad;
            conv->set_multiplier(std::move(config));
        } else if (auto* linear = dynamic_cast<ApproxLinear*>(&m)) {
            MultiplierConfig config = linear->multiplier();
            config.grad = grad;
            linear->set_multiplier(std::move(config));
        } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(&m)) {
            MultiplierConfig config = dw->multiplier();
            config.grad = grad;
            dw->set_multiplier(std::move(config));
        }
    });
}

} // namespace amret::approx
