#include "approx/approx_conv.hpp"

#include "approx/depthwise.hpp"
#include "kernels/im2col.hpp"
#include "kernels/lut_kernels.hpp"
#include "kernels/tuning.hpp"
#include "runtime/parallel.hpp"

#include <cassert>

namespace amret::approx {

using tensor::ConvGeom;
using tensor::Shape;
using tensor::Tensor;
namespace tune = kernels::tune;

MultiplierConfig MultiplierConfig::exact_ste(unsigned bits) {
    MultiplierConfig config;
    config.lut = std::make_shared<appmult::AppMultLut>(appmult::AppMultLut::exact(bits));
    config.grad = std::make_shared<core::GradLut>(core::build_ste_grad(bits));
    return config;
}

// ------------------------------------------------------------ ApproxConv2d

ApproxConv2d::ApproxConv2d(std::int64_t in_ch, std::int64_t out_ch,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, util::Rng& rng)
    : weight("conv.weight", Tensor::he_init(Shape{out_ch, in_ch, kernel, kernel},
                                            in_ch * kernel * kernel, rng)),
      bias("conv.bias", Tensor::zeros(Shape{out_ch})),
      in_ch_(in_ch), out_ch_(out_ch), kernel_(kernel), stride_(stride), pad_(pad) {}

void ApproxConv2d::set_multiplier(MultiplierConfig config) {
    assert(config.valid());
    mult_ = std::move(config);
}

void ApproxConv2d::collect_params(std::vector<nn::Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

void ApproxConv2d::save_extra_state(std::vector<float>& out) const {
    out.push_back(act_observer_.lo());
    out.push_back(act_observer_.hi());
    out.push_back(act_observer_.initialized() ? 1.0f : 0.0f);
}

void ApproxConv2d::load_extra_state(const float*& cursor) {
    const float lo = *cursor++;
    const float hi = *cursor++;
    const bool init = *cursor++ != 0.0f;
    act_observer_.set_range(lo, hi, init);
}

nn::BatchCoupling ApproxConv2d::coupling() const {
    // The quantized training forward updates the activation observer's EMA,
    // a batch-level statistic that must fold exactly once per step; compute
    // itself is per-sample. Float mode (and frozen eval) is sample-local.
    return mode_ == ComputeMode::kQuantized && training_
               ? nn::BatchCoupling::kStatsCoupled
               : nn::BatchCoupling::kSampleLocal;
}

void ApproxConv2d::batch_pre_pass(const Tensor& x) {
    if (mode_ == ComputeMode::kQuantized &&
        (training_ || !act_observer_.initialized()))
        act_observer_.observe(x);
}

std::int64_t ApproxConv2d::last_forward_macs(const nn::Context& ctx) const {
    const State* st = ctx.peek<State>(*this);
    if (!st || st->geom.batch == 0) return 0;
    return st->geom.positions() * st->geom.patch() * out_ch_;
}

Tensor ApproxConv2d::forward(const Tensor& x, nn::Context& ctx) {
    assert(x.rank() == 4 && x.dim(1) == in_ch_);
    State& st = ctx.state<State>(*this);
    st.geom = ConvGeom{x.dim(0), in_ch_, x.dim(2), x.dim(3), kernel_, stride_, pad_};
    return mode_ == ComputeMode::kFloat ? forward_float(x, st, ctx)
                                        : forward_quant(x, st, ctx);
}

Tensor ApproxConv2d::backward(const Tensor& gy, nn::Context& ctx) {
    State& st = ctx.state<State>(*this);
    return mode_ == ComputeMode::kFloat ? backward_float(gy, st, ctx)
                                        : backward_quant(gy, st, ctx);
}

Tensor ApproxConv2d::forward_float(const Tensor& x, State& st, nn::Context&) {
    st.cols = kernels::im2col(x, st.geom);
    const Tensor w2d = weight.value.reshaped(Shape{out_ch_, st.geom.patch()});
    Tensor po = tensor::matmul_nt(st.cols, w2d); // (P, O)
    runtime::parallel_for(0, po.dim(0),
                          runtime::grain_for(po.dim(0), tune::kGrainCopyRows),
                          [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t pidx = pb; pidx < pe; ++pidx) {
            float* row = po.data() + pidx * out_ch_;
            for (std::int64_t c = 0; c < out_ch_; ++c) row[c] += bias.value[c];
        }
    });
    Tensor y(Shape{st.geom.batch, out_ch_, st.geom.out_h(), st.geom.out_w()});
    kernels::scatter_positions(po.data(), st.geom.batch, out_ch_, st.geom.out_h(),
                               st.geom.out_w(), y.data());
    return y;
}

Tensor ApproxConv2d::backward_float(const Tensor& gy, State& st, nn::Context& ctx) {
    Tensor gyp(Shape{st.geom.positions(), out_ch_});
    kernels::gather_positions(gy.data(), st.geom.batch, out_ch_, st.geom.out_h(),
                              st.geom.out_w(), gyp.data());
    // Bias gradient: column sums of gyp.
    kernels::accumulate_bias_grad(gyp.data(), st.geom.positions(), out_ch_,
                                  ctx.grad(bias).data());
    // dW = gyp^T @ cols, reshaped to (O, C, K, K).
    Tensor dw2d = tensor::matmul_tn(gyp, st.cols); // (O, patch)
    ctx.grad(weight).add_(dw2d.reshaped(weight.value.shape()));
    // dx = col2im(gyp @ W).
    const Tensor w2d = weight.value.reshaped(Shape{out_ch_, st.geom.patch()});
    const Tensor dcols = tensor::matmul(gyp, w2d); // (P, patch)
    return kernels::col2im(dcols, st.geom);
}

Tensor ApproxConv2d::forward_quant(const Tensor& x, State& st, nn::Context& ctx) {
    assert(mult_.valid() && "set_multiplier() before quantized forward");
    const unsigned bits = mult_.bits();
    const std::int64_t patch = st.geom.patch();

    // New allocation epoch: everything quantized-forward puts in the arena
    // (codes, masks, columns) stays valid through the matching backward.
    st.ws.reset();

    // Weight quantization parameters track the current weights each step.
    quant::QuantParams wparams{};
    if (per_channel_) {
        // Each output channel (filter) gets its own affine parameters.
        st.wscale_per_o = st.ws.alloc<float>(out_ch_);
        st.wzero_per_o = st.ws.alloc<std::int32_t>(out_ch_);
        st.wq = kernels::quantize_weights_per_channel(weight.value.data(), out_ch_,
                                                      patch, bits, st.wscale_per_o,
                                                      st.wzero_per_o, st.ws);
    } else {
        wparams = quant::choose_params(weight.value.min(), weight.value.max(), bits);
        st.wq = kernels::quantize_into(weight.value.data(), out_ch_ * patch, wparams,
                                       st.ws);
    }

    // Activation parameters: EMA-calibrated during training (standard fake
    // quantization); frozen running range in eval. Frozen contexts rely on
    // batch_pre_pass having fed the observer the full batch already.
    if ((training_ && !ctx.observers_frozen()) || !act_observer_.initialized())
        act_observer_.observe(x);
    const quant::QuantParams xparams = act_observer_.params(bits);

    // Blocked layout (default): weight codes are re-packed into pre-shifted
    // panels and the activation codes are produced by the fused
    // im2col+quantize packer — the full (P, patch) float column buffer never
    // exists. The fused quantizer and the blocked kernels are bitwise-
    // identical to the scalar path (tests/test_layout.cpp), so both modes
    // train identically.
    st.blocked = kernels::layout_mode() != kernels::LayoutMode::kScalar;
    const std::int64_t positions = st.geom.positions();
    Tensor po(Shape{positions, out_ch_});
    if (st.blocked) {
        const kernels::Tuning& tiles = kernels::Tuning::current();
        st.wpan = kernels::pack_quantized_weights(
            st.wq, bits,
            kernels::make_panel_plan(out_ch_, patch, tiles.to, tiles.tk),
            st.ws);
        const kernels::QuantPanels xq = kernels::quantize_conv_panels(
            x.data(), st.geom, xparams,
            kernels::make_panel_plan(positions, patch, tiles.tp, tiles.tk),
            st.ws);
        st.xpan = xq.panels;
        st.xq = kernels::QuantView{nullptr, xq.in_range, xparams,
                                   positions * patch};

        kernels::BlockedGemmArgs args;
        args.bits = bits;
        args.lut = mult_.lut->table().data();
        args.w = st.wpan;
        args.x = st.xpan;
        args.o = out_ch_;
        args.p = positions;
        args.k = patch;
        args.scale_x = xparams.scale;
        args.zero_x = static_cast<std::int32_t>(xparams.zero_point);
        if (per_channel_) {
            args.scale_w_per_o = st.wscale_per_o;
            args.zero_w_per_o = st.wzero_per_o;
        } else {
            args.scale_w = wparams.scale;
            args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
        }
        kernels::lut_forward_blocked(args, bias.value.data(), po.data(),
                                     st.ws);
    } else {
        float* cols = st.ws.alloc<float>(positions * patch);
        kernels::im2col(x.data(), st.geom, cols);
        st.xq = kernels::quantize_into(cols, positions * patch, xparams,
                                       st.ws);

        kernels::LutGemmArgs args;
        args.bits = bits;
        args.lut = mult_.lut->table().data();
        args.wq = st.wq.codes;
        args.xq = st.xq.codes;
        args.o = out_ch_;
        args.p = positions;
        args.k = patch;
        args.scale_x = xparams.scale;
        args.zero_x = static_cast<std::int32_t>(xparams.zero_point);
        if (per_channel_) {
            args.scale_w_per_o = st.wscale_per_o;
            args.zero_w_per_o = st.wzero_per_o;
        } else {
            args.scale_w = wparams.scale;
            args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
        }
        kernels::lut_forward(args, bias.value.data(), po.data(), st.ws);
    }
    Tensor y(Shape{st.geom.batch, out_ch_, st.geom.out_h(), st.geom.out_w()});
    kernels::scatter_positions(po.data(), st.geom.batch, out_ch_, st.geom.out_h(),
                               st.geom.out_w(), y.data());
    return y;
}

Tensor ApproxConv2d::backward_quant(const Tensor& gy, State& st, nn::Context& ctx) {
    const std::int64_t p = st.geom.positions(), patch = st.geom.patch();
    float* gyp = st.ws.alloc<float>(p * out_ch_);
    kernels::gather_positions(gy.data(), st.geom.batch, out_ch_, st.geom.out_h(),
                              st.geom.out_w(), gyp);
    kernels::accumulate_bias_grad(gyp, p, out_ch_, ctx.grad(bias).data());

    const float scale_x = st.xq.params.scale;
    float* gw_raw = st.ws.alloc<float>(out_ch_ * patch);
    float* gx_raw = st.ws.alloc<float>(p * patch);
    runtime::parallel_for(0, out_ch_ * patch,
                          runtime::grain_for(out_ch_ * patch,
                                             tune::kGrainElementwiseWide),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) gw_raw[i] = 0.0f;
    });
    runtime::parallel_for(0, p * patch,
                          runtime::grain_for(p * patch,
                                             tune::kGrainElementwiseWide),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) gx_raw[i] = 0.0f;
    });
    if (st.blocked) {
        kernels::BlockedGemmArgs args;
        args.bits = mult_.bits();
        args.lut = mult_.lut->table().data();
        args.w = st.wpan;
        args.x = st.xpan;
        args.o = out_ch_;
        args.p = p;
        args.k = patch;
        args.scale_x = scale_x;
        args.zero_x = static_cast<std::int32_t>(st.xq.params.zero_point);
        if (per_channel_) {
            args.scale_w_per_o = st.wscale_per_o;
            args.zero_w_per_o = st.wzero_per_o;
        } else {
            args.scale_w = st.wq.params.scale;
            args.zero_w = static_cast<std::int32_t>(st.wq.params.zero_point);
        }
        kernels::lut_backward_blocked(args, gyp, mult_.grad->dw_table().data(),
                                      mult_.grad->dx_table().data(), gw_raw,
                                      gx_raw, st.ws);
    } else {
        kernels::LutGemmArgs args;
        args.bits = mult_.bits();
        args.lut = mult_.lut->table().data();
        args.wq = st.wq.codes;
        args.xq = st.xq.codes;
        args.o = out_ch_;
        args.p = p;
        args.k = patch;
        args.scale_x = scale_x;
        args.zero_x = static_cast<std::int32_t>(st.xq.params.zero_point);
        if (per_channel_) {
            args.scale_w_per_o = st.wscale_per_o;
            args.zero_w_per_o = st.wzero_per_o;
        } else {
            args.scale_w = st.wq.params.scale;
            args.zero_w = static_cast<std::int32_t>(st.wq.params.zero_point);
        }
        kernels::lut_backward(args, gyp, mult_.grad->dw_table().data(),
                              mult_.grad->dx_table().data(), gw_raw, gx_raw);
    }

    // Eq. (9): fold in the quantizer derivative. dW/dw = 1/s_w inside the
    // clamp range (0 outside); dy/dY contributed s_w*s_x, so the weight
    // gradient scale is s_x. The activation gradient's s_w factor was folded
    // into gx_raw by the kernel (it varies per row in per-channel mode);
    // only the clamp mask remains.
    float* wg = ctx.grad(weight).data();
    runtime::parallel_for(0, out_ch_ * patch,
                          runtime::grain_for(out_ch_ * patch,
                                             tune::kGrainElementwise),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (st.wq.in_range[i]) wg[i] += scale_x * gw_raw[i];
        }
    });
    runtime::parallel_for(0, p * patch,
                          runtime::grain_for(p * patch,
                                             tune::kGrainElementwise),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (!st.xq.in_range[i]) gx_raw[i] = 0.0f;
        }
    });
    Tensor gx(Shape{st.geom.batch, st.geom.in_ch, st.geom.in_h, st.geom.in_w});
    kernels::col2im(gx_raw, st.geom, gx.data());
    return gx;
}

// ----------------------------------------------------------- ApproxLinear

ApproxLinear::ApproxLinear(std::int64_t in_features, std::int64_t out_features,
                           util::Rng& rng)
    : weight("alinear.weight",
             Tensor::he_init(Shape{out_features, in_features}, in_features, rng)),
      bias("alinear.bias", Tensor::zeros(Shape{out_features})),
      in_features_(in_features), out_features_(out_features) {}

void ApproxLinear::set_multiplier(MultiplierConfig config) {
    assert(config.valid());
    mult_ = std::move(config);
}

void ApproxLinear::collect_params(std::vector<nn::Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

void ApproxLinear::save_extra_state(std::vector<float>& out) const {
    out.push_back(act_observer_.lo());
    out.push_back(act_observer_.hi());
    out.push_back(act_observer_.initialized() ? 1.0f : 0.0f);
}

void ApproxLinear::load_extra_state(const float*& cursor) {
    const float lo = *cursor++;
    const float hi = *cursor++;
    const bool init = *cursor++ != 0.0f;
    act_observer_.set_range(lo, hi, init);
}

nn::BatchCoupling ApproxLinear::coupling() const {
    return mode_ == ComputeMode::kQuantized && training_
               ? nn::BatchCoupling::kStatsCoupled
               : nn::BatchCoupling::kSampleLocal;
}

void ApproxLinear::batch_pre_pass(const Tensor& x) {
    if (mode_ == ComputeMode::kQuantized &&
        (training_ || !act_observer_.initialized()))
        act_observer_.observe(x);
}

std::int64_t ApproxLinear::last_forward_macs(const nn::Context& ctx) const {
    const State* st = ctx.peek<State>(*this);
    return st ? st->batch * in_features_ * out_features_ : 0;
}

Tensor ApproxLinear::forward(const Tensor& x, nn::Context& ctx) {
    assert(x.rank() == 2 && x.dim(1) == in_features_);
    State& st = ctx.state<State>(*this);
    st.batch = x.dim(0);
    if (mode_ == ComputeMode::kFloat) {
        st.x = x;
        Tensor y = tensor::matmul_nt(x, weight.value);
        for (std::int64_t i = 0; i < y.dim(0); ++i)
            for (std::int64_t j = 0; j < out_features_; ++j)
                y[i * out_features_ + j] += bias.value[j];
        return y;
    }

    assert(mult_.valid());
    const unsigned bits = mult_.bits();
    st.ws.reset();
    const quant::QuantParams wparams =
        quant::choose_params(weight.value.min(), weight.value.max(), bits);
    st.wq = kernels::quantize_into(weight.value.data(),
                                   out_features_ * in_features_, wparams, st.ws);
    if ((training_ && !ctx.observers_frozen()) || !act_observer_.initialized())
        act_observer_.observe(x);
    const quant::QuantParams xparams = act_observer_.params(bits);

    st.blocked = kernels::layout_mode() != kernels::LayoutMode::kScalar;
    Tensor y(Shape{st.batch, out_features_});
    if (st.blocked) {
        const kernels::Tuning& tiles = kernels::Tuning::current();
        st.wpan = kernels::pack_quantized_weights(
            st.wq, bits,
            kernels::make_panel_plan(out_features_, in_features_, tiles.to,
                                     tiles.tk),
            st.ws);
        const kernels::QuantPanels xq = kernels::quantize_panels(
            x.data(), xparams,
            kernels::make_panel_plan(st.batch, in_features_, tiles.tp,
                                     tiles.tk),
            st.ws);
        st.xpan = xq.panels;
        st.xq = kernels::QuantView{nullptr, xq.in_range, xparams,
                                   st.batch * in_features_};

        kernels::BlockedGemmArgs args;
        args.bits = bits;
        args.lut = mult_.lut->table().data();
        args.w = st.wpan;
        args.x = st.xpan;
        args.o = out_features_;
        args.p = st.batch;
        args.k = in_features_;
        args.scale_w = wparams.scale;
        args.scale_x = xparams.scale;
        args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
        args.zero_x = static_cast<std::int32_t>(xparams.zero_point);
        kernels::lut_forward_blocked(args, bias.value.data(), y.data(), st.ws);
    } else {
        st.xq = kernels::quantize_into(x.data(), st.batch * in_features_,
                                       xparams, st.ws);

        kernels::LutGemmArgs args;
        args.bits = bits;
        args.lut = mult_.lut->table().data();
        args.wq = st.wq.codes;
        args.xq = st.xq.codes;
        args.o = out_features_;
        args.p = st.batch;
        args.k = in_features_;
        args.scale_w = wparams.scale;
        args.scale_x = xparams.scale;
        args.zero_w = static_cast<std::int32_t>(wparams.zero_point);
        args.zero_x = static_cast<std::int32_t>(xparams.zero_point);
        kernels::lut_forward(args, bias.value.data(), y.data(), st.ws);
    }
    return y;
}

Tensor ApproxLinear::backward(const Tensor& gy, nn::Context& ctx) {
    State& st = ctx.state<State>(*this);
    assert(gy.rank() == 2 && gy.dim(0) == st.batch);
    kernels::accumulate_bias_grad(gy.data(), st.batch, out_features_,
                                  ctx.grad(bias).data());

    if (mode_ == ComputeMode::kFloat) {
        Tensor dw = tensor::matmul_tn(gy, st.x);
        ctx.grad(weight).add_(dw);
        return tensor::matmul(gy, weight.value);
    }

    const float scale_x = st.xq.params.scale;
    const std::int64_t nw = out_features_ * in_features_;
    float* gw_raw = st.ws.alloc<float>(nw);
    runtime::parallel_for(0, nw,
                          runtime::grain_for(nw, tune::kGrainElementwiseWide),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) gw_raw[i] = 0.0f;
    });
    Tensor gx(Shape{st.batch, in_features_}); // zero-initialized
    if (st.blocked) {
        kernels::BlockedGemmArgs args;
        args.bits = mult_.bits();
        args.lut = mult_.lut->table().data();
        args.w = st.wpan;
        args.x = st.xpan;
        args.o = out_features_;
        args.p = st.batch;
        args.k = in_features_;
        args.scale_w = st.wq.params.scale;
        args.scale_x = scale_x;
        args.zero_w = static_cast<std::int32_t>(st.wq.params.zero_point);
        args.zero_x = static_cast<std::int32_t>(st.xq.params.zero_point);
        kernels::lut_backward_blocked(args, gy.data(),
                                      mult_.grad->dw_table().data(),
                                      mult_.grad->dx_table().data(), gw_raw,
                                      gx.data(), st.ws);
    } else {
        kernels::LutGemmArgs args;
        args.bits = mult_.bits();
        args.lut = mult_.lut->table().data();
        args.wq = st.wq.codes;
        args.xq = st.xq.codes;
        args.o = out_features_;
        args.p = st.batch;
        args.k = in_features_;
        args.scale_w = st.wq.params.scale;
        args.scale_x = scale_x;
        args.zero_w = static_cast<std::int32_t>(st.wq.params.zero_point);
        args.zero_x = static_cast<std::int32_t>(st.xq.params.zero_point);
        kernels::lut_backward(args, gy.data(), mult_.grad->dw_table().data(),
                              mult_.grad->dx_table().data(), gw_raw, gx.data());
    }

    float* wg = ctx.grad(weight).data();
    runtime::parallel_for(0, nw,
                          runtime::grain_for(nw, tune::kGrainElementwise),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (st.wq.in_range[i]) wg[i] += scale_x * gw_raw[i];
        }
    });
    // The s_w factor of the activation gradient is folded in by the kernel.
    runtime::parallel_for(0, gx.numel(),
                          runtime::grain_for(gx.numel(), tune::kGrainElementwise),
                          [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            if (!st.xq.in_range[i]) gx[i] = 0.0f;
        }
    });
    return gx;
}

// ------------------------------------------------------------- utilities

void configure_approx_layers(nn::Module& root, const MultiplierConfig& config,
                             ComputeMode mode) {
    root.visit([&](nn::Module& m) {
        if (auto* conv = dynamic_cast<ApproxConv2d*>(&m)) {
            conv->set_multiplier(config);
            conv->set_mode(mode);
        } else if (auto* linear = dynamic_cast<ApproxLinear*>(&m)) {
            linear->set_multiplier(config);
            linear->set_mode(mode);
        } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(&m)) {
            dw->set_multiplier(config);
            dw->set_mode(mode);
        }
    });
}

void set_gradient_luts(nn::Module& root, std::shared_ptr<const core::GradLut> grad) {
    root.visit([&](nn::Module& m) {
        if (auto* conv = dynamic_cast<ApproxConv2d*>(&m)) {
            MultiplierConfig config = conv->multiplier();
            config.grad = grad;
            conv->set_multiplier(std::move(config));
        } else if (auto* linear = dynamic_cast<ApproxLinear*>(&m)) {
            MultiplierConfig config = linear->multiplier();
            config.grad = grad;
            linear->set_multiplier(std::move(config));
        } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(&m)) {
            MultiplierConfig config = dw->multiplier();
            config.grad = grad;
            dw->set_multiplier(std::move(config));
        }
    });
}

} // namespace amret::approx
