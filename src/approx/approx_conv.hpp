/// \file approx_conv.hpp
/// \brief Convolution / linear layers with AppMult-simulated integer
///        arithmetic (Fig. 4) and LUT-based multiplier gradients (Eq. 9).
///
/// Each layer runs in one of two modes:
///   - kFloat: ordinary float convolution (used for pretraining);
///   - kQuantized: the paper's integer path — weights and activations are
///     affine-quantized (Eq. 7), every product is looked up in the AppMult
///     LUT, and the accumulated integer result is dequantized (Eq. 8).
/// In quantized mode the backward pass follows Eq. (9): the multiplier
/// gradient ∂AM/∂W (∂AM/∂X) comes from a precomputed GradLut — either the
/// STE baseline or the paper's difference-based approximation — and the
/// quantizer contributes its clamp-aware straight-through factor.
///
/// With the *exact* multiplier LUT and the STE GradLut, the quantized path
/// is mathematically identical to a fake-quantized float convolution; the
/// test suite pins this equivalence.
///
/// Per-invocation state (geometry, im2col columns, the scratch arena with
/// quantized codes/masks) lives in the caller's nn::Context; the layer
/// itself keeps only weights, the multiplier config, and the activation
/// observer (persistent calibration state).
#pragma once

#include "appmult/appmult.hpp"
#include "core/grad_lut.hpp"
#include "kernels/quantize.hpp"
#include "kernels/workspace.hpp"
#include "nn/module.hpp"
#include "quant/quant.hpp"

#include <memory>

namespace amret::approx {

/// Execution mode of an approximate layer.
enum class ComputeMode { kFloat, kQuantized };

/// Shared multiplier configuration: product LUT + gradient LUT, plus the
/// identity metadata (registry name, gradient HWS/mode) that per-layer
/// assignments thread through to engine descriptions and certificates.
/// An empty name means an ad-hoc config (hand-built LUTs, exact_ste()).
struct MultiplierConfig {
    std::shared_ptr<const appmult::AppMultLut> lut;
    std::shared_ptr<const core::GradLut> grad;
    std::string name;                                   ///< registry name, "" = ad-hoc
    unsigned hws = 0;                                   ///< gradient half-window size
    core::GradientMode grad_mode = core::GradientMode::kSte;

    [[nodiscard]] bool valid() const {
        return lut && grad && !lut->empty() && lut->bits() == grad->bits();
    }
    [[nodiscard]] unsigned bits() const { return lut ? lut->bits() : 0; }

    /// Exact multiplier with STE gradients at the given width (the QAT
    /// reference configuration).
    static MultiplierConfig exact_ste(unsigned bits);
};

/// 2-D convolution whose multiplications can be replaced by an AppMult.
class ApproxConv2d : public nn::Module {
public:
    ApproxConv2d(std::int64_t in_ch, std::int64_t out_ch, std::int64_t kernel,
                 std::int64_t stride, std::int64_t pad, util::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x, nn::Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, nn::Context& ctx) override;
    [[nodiscard]] nn::BatchCoupling coupling() const override;
    void batch_pre_pass(const tensor::Tensor& x) override;
    void collect_params(std::vector<nn::Param*>& out) override;
    void save_extra_state(std::vector<float>& out) const override;
    void load_extra_state(const float*& cursor) override;
    [[nodiscard]] std::string name() const override { return "ApproxConv2d"; }

    /// Switches float / quantized execution.
    void set_mode(ComputeMode mode) { mode_ = mode; }
    [[nodiscard]] ComputeMode mode() const { return mode_; }

    /// Installs the multiplier used in quantized mode.
    void set_multiplier(MultiplierConfig config);
    [[nodiscard]] const MultiplierConfig& multiplier() const { return mult_; }

    /// Per-output-channel weight quantization (each filter gets its own
    /// scale/zero-point, standard in production QAT). Default: per-tensor.
    void set_per_channel_weights(bool enabled) { per_channel_ = enabled; }
    [[nodiscard]] bool per_channel_weights() const { return per_channel_; }

    nn::Param weight; ///< (O, C, K, K)
    nn::Param bias;   ///< (O)

    [[nodiscard]] std::int64_t in_channels() const { return in_ch_; }
    [[nodiscard]] std::int64_t out_channels() const { return out_ch_; }
    [[nodiscard]] std::int64_t kernel() const { return kernel_; }
    [[nodiscard]] std::int64_t stride() const { return stride_; }
    [[nodiscard]] std::int64_t padding() const { return pad_; }

    /// Multiplications executed by the most recent forward call through
    /// \p ctx (positions x patch x out_channels); 0 before any forward.
    [[nodiscard]] std::int64_t last_forward_macs(const nn::Context& ctx) const;

private:
    // Per-invocation state (nn::Context slot). Quant-mode scratch (codes,
    // masks, columns, raw gradients) lives in the embedded workspace arena:
    // reset at the start of each quantized forward, buffers remain valid
    // through the matching backward (DESIGN.md §10/§11).
    struct State {
        tensor::ConvGeom geom;
        tensor::Tensor cols;                  // float mode: (P, patch)
        kernels::Workspace ws;                // quant mode scratch arena
        kernels::QuantView xq;                // quant mode: codes of cols
        kernels::QuantView wq;                // quant mode: codes of weights
        float* wscale_per_o = nullptr;        // per-channel row scales (ws-backed)
        std::int32_t* wzero_per_o = nullptr;  // per-channel row zeros (ws-backed)
        // Blocked layout (default): codes live pre-tiled in panels, the
        // activation panels produced by the fused im2col+quantize packer
        // (xq.codes stays null; the row-major masks/params remain in xq for
        // the backward epilogues). Captured per forward from layout_mode().
        bool blocked = false;
        kernels::WeightPanels wpan;
        kernels::ActPanels xpan;
    };

    tensor::Tensor forward_float(const tensor::Tensor& x, State& st,
                                 nn::Context& ctx);
    tensor::Tensor forward_quant(const tensor::Tensor& x, State& st,
                                 nn::Context& ctx);
    tensor::Tensor backward_float(const tensor::Tensor& gy, State& st,
                                  nn::Context& ctx);
    tensor::Tensor backward_quant(const tensor::Tensor& gy, State& st,
                                  nn::Context& ctx);

    std::int64_t in_ch_, out_ch_, kernel_, stride_, pad_;
    ComputeMode mode_ = ComputeMode::kFloat;
    bool per_channel_ = false;
    MultiplierConfig mult_;
    quant::EmaObserver act_observer_;
};

/// Fully connected layer with the same two modes (provided for completeness;
/// the paper approximates conv layers only and the stock models keep their
/// classifier in kFloat).
class ApproxLinear : public nn::Module {
public:
    ApproxLinear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng);

    tensor::Tensor forward(const tensor::Tensor& x, nn::Context& ctx) override;
    tensor::Tensor backward(const tensor::Tensor& gy, nn::Context& ctx) override;
    [[nodiscard]] nn::BatchCoupling coupling() const override;
    void batch_pre_pass(const tensor::Tensor& x) override;
    void collect_params(std::vector<nn::Param*>& out) override;
    void save_extra_state(std::vector<float>& out) const override;
    void load_extra_state(const float*& cursor) override;
    [[nodiscard]] std::string name() const override { return "ApproxLinear"; }

    void set_mode(ComputeMode mode) { mode_ = mode; }
    [[nodiscard]] ComputeMode mode() const { return mode_; }
    void set_multiplier(MultiplierConfig config);
    [[nodiscard]] const MultiplierConfig& multiplier() const { return mult_; }

    nn::Param weight; ///< (out, in)
    nn::Param bias;   ///< (out)

    /// Multiplications executed by the most recent forward call through
    /// \p ctx.
    [[nodiscard]] std::int64_t last_forward_macs(const nn::Context& ctx) const;

private:
    struct State {
        tensor::Tensor x;       // float mode cache
        kernels::Workspace ws;  // quant mode scratch arena (DESIGN.md §10)
        kernels::QuantView xq;
        kernels::QuantView wq;
        std::int64_t batch = 0;
        bool blocked = false;   // see ApproxConv2d::State
        kernels::WeightPanels wpan;
        kernels::ActPanels xpan;
    };

    std::int64_t in_features_, out_features_;
    ComputeMode mode_ = ComputeMode::kFloat;
    MultiplierConfig mult_;
    quant::EmaObserver act_observer_;
};

/// Applies \p config and \p mode to every approximate layer in \p root.
void configure_approx_layers(nn::Module& root, const MultiplierConfig& config,
                             ComputeMode mode);

/// Sets only the gradient LUT on every approximate layer (used to compare
/// gradient estimators over the same forward behaviour).
void set_gradient_luts(nn::Module& root, std::shared_ptr<const core::GradLut> grad);

} // namespace amret::approx
