#!/usr/bin/env python3
"""Project-specific lint: invariants clang-tidy has no checker for.

Six rules, each scoped to where the invariant actually holds meaning:

  kernel-alloc     src/kernels must stay allocation-free (Workspace-only):
                   the inner loops run per batch inside parallel workers, and
                   a stray vector/new there reintroduces the heap traffic the
                   arena exists to remove. The arena itself (workspace.*) is
                   exempt.

  mutable-static   No mutable statics in nn::Module subclass code
                   (src/nn, src/approx, src/models): modules must be
                   re-entrant — per-invocation state lives in nn::Context,
                   process-wide state in explicitly synchronized singletons
                   elsewhere.

  rng-discipline   No rand()/srand()/std::random_device/time-seeded engines
                   outside util::Rng: every random stream must be derived
                   from an explicit seed, or determinism tests lose meaning.

  panel-indexing   No raw indexing into blocked panel code buffers
                   (`*_panels[...]`, `panel_offset(...)`) outside
                   src/kernels: the panel interleave is a kernel-private
                   contract (layout.hpp); consumers go through the blocked
                   kernels or the unpack_* helpers so a layout change cannot
                   silently corrupt a caller. The analyzer's independent
                   re-derivation and deliberate test corruptions carry
                   explicit `// invariant-ok:` marks.

  simd-intrinsics  No raw vector intrinsics (`_mm*_...`, `__m128/256/512`,
                   `*intrin.h` includes) outside src/kernels/simd/: the SIMD
                   kernels are reachable only through the dispatch seam
                   (kernels/simd/simd.hpp), which is what keeps the scalar
                   blocked kernels an authoritative bitwise oracle and keeps
                   -m<isa> flags confined to the per-ISA leaf TUs. Escape a
                   deliberate exception with `// invariant-ok: simd`.

  registry-discipline
                   No direct appmult::Registry lookups in layer/engine code
                   (src/nn, src/approx, src/serve, src/train, src/models):
                   layers and engines consume multiplier artifacts through
                   approx::MultiplierCache / MultiplierAssignment so N layers
                   sharing a multiplier share one LUT build and every config
                   is content-addressed. The cache itself (assignment.cpp)
                   is the sanctioned escape hatch and carries
                   `// invariant-ok:` marks.

A line ending in `// invariant-ok: <reason>` is exempt from all rules.
Exit status: 0 clean, 1 violations, 2 usage error.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

ALLOW_MARK = "invariant-ok:"

# (rule, file glob roots, exempt path substrings, line regex, message)
KERNEL_ALLOC = re.compile(
    r"\bnew\b(?!\s*\()|\bnew\s*\[|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("
    r"|std::vector\s*<|std::string\b|make_unique|make_shared"
    r"|\.push_back\s*\(|\.resize\s*\(|\.reserve\s*\("
)
MUTABLE_STATIC = re.compile(r"^\s*(?:inline\s+)?(?:thread_local\s+)?static\s+")
STATIC_OK = re.compile(
    r"static\s+(?:const\b|constexpr\b|_|assert)|static_cast|static_assert"
)
FUNC_DECL = re.compile(r"\([^()]*\)\s*(?:const\s*)?(?:noexcept\s*)?[;{]|\)\s*->")
RNG_BANNED = re.compile(r"\brand\s*\(|\bsrand\s*\(|std::random_device\b")
RNG_TIME_SEED = re.compile(
    r"(mt19937|minstd_rand|default_random_engine)[^;]*\("
    r"[^;)]*(time\s*\(|::now\s*\()"
)
PANEL_INDEX = re.compile(r"\bpanel_offset\s*\(|\b\w*_panels\s*\[|\bpanels\s*\[")
REGISTRY_LOOKUP = re.compile(r"\bRegistry::instance\s*\(")
SIMD_INTRINSIC = re.compile(
    r"\b_mm\d*_\w+\s*\(|\b__m(?:128|256|512)i?\b"
    r"|#\s*include\s*<(?:imm|x86|xmm|emm|pmm|tmm|smm|nmm|wmm|avx\w*|arm_neon)"
    r"intrin"
)


def strip_comments_and_strings(line: str) -> str:
    """Crude but adequate: drop // comments and string literal contents so the
    patterns only see code. Block comments spanning lines are handled by the
    caller's in_block flag."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//")[0]


def iter_source(paths):
    for root in paths:
        for path in sorted((ROOT / root).rglob("*")):
            if path.suffix in (".hpp", ".cpp", ".h", ".cc"):
                yield path


def check_file(path, rules, findings):
    rel = path.relative_to(ROOT).as_posix()
    in_block = False
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        if ALLOW_MARK in raw:
            continue
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block = False
        # Remove complete block comments, then detect an opening one.
        line = re.sub(r"/\*.*?\*/", "", line)
        if "/*" in line:
            line = line.split("/*")[0]
            in_block = True
        code = strip_comments_and_strings(line)
        if not code.strip():
            continue
        for rule, pattern, message in rules:
            if rule == "mutable-static":
                if not MUTABLE_STATIC.search(code):
                    continue
                if STATIC_OK.search(code) or FUNC_DECL.search(code):
                    continue
            elif not pattern.search(code):
                continue
            findings.append(f"{rel}:{lineno}: [{rule}] {message}\n    {raw.strip()}")


def main():
    if len(sys.argv) > 1:
        print(__doc__)
        return 2
    findings = []

    for path in iter_source(["src/kernels"]):
        if path.stem == "workspace":
            continue  # the arena is the one allowed allocator
        check_file(
            path,
            [("kernel-alloc", KERNEL_ALLOC,
              "heap allocation in src/kernels; use kernels::Workspace")],
            findings,
        )

    for path in iter_source(["src/nn", "src/approx", "src/models"]):
        check_file(
            path,
            [("mutable-static", None,
              "mutable static in module code; state belongs in nn::Context "
              "or a synchronized singleton outside module classes")],
            findings,
        )

    for path in iter_source(["src", "tools", "tests", "bench"]):
        if path.parent.name == "util" and path.stem == "rng":
            continue
        check_file(
            path,
            [("rng-discipline", RNG_BANNED,
              "unseeded/system randomness; derive streams from util::Rng"),
             ("rng-discipline", RNG_TIME_SEED,
              "time-seeded RNG engine; derive streams from util::Rng")],
            findings,
        )

    for path in iter_source(["src", "tools", "tests", "bench"]):
        if path.relative_to(ROOT).as_posix().startswith("src/kernels/"):
            continue
        check_file(
            path,
            [("panel-indexing", PANEL_INDEX,
              "raw panel-buffer indexing outside src/kernels; go through the "
              "blocked kernels or the unpack_* helpers (kernels/layout.hpp)")],
            findings,
        )

    for path in iter_source(["src", "tools", "tests", "bench"]):
        if path.relative_to(ROOT).as_posix().startswith("src/kernels/simd/"):
            continue
        check_file(
            path,
            [("simd-intrinsics", SIMD_INTRINSIC,
              "raw vector intrinsics outside src/kernels/simd/; go through "
              "the dispatch seam (kernels/simd/simd.hpp)")],
            findings,
        )

    for path in iter_source(["src/nn", "src/approx", "src/serve", "src/train",
                             "src/models"]):
        check_file(
            path,
            [("registry-discipline", REGISTRY_LOOKUP,
              "direct appmult::Registry lookup in layer/engine code; go "
              "through approx::MultiplierCache / MultiplierAssignment "
              "(approx/assignment.hpp)")],
            findings,
        )

    if findings:
        print(f"{len(findings)} invariant violation(s):")
        for f in findings:
            print(f)
        return 1
    print("invariants clean (kernel-alloc, mutable-static, rng-discipline, "
          "panel-indexing, simd-intrinsics, registry-discipline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
