#!/usr/bin/env bash
# Enforced lint gate: project invariants + clang-tidy.
#
#   scripts/lint.sh             # both passes (clang-tidy when available)
#   scripts/lint.sh --tidy-only # clang-tidy alone (fails if unavailable)
#   scripts/lint.sh --invariants-only
#
# The invariant checker (scripts/check_invariants.py) always runs — it has no
# toolchain dependency. clang-tidy runs through the `lint` CMake preset
# (.clang-tidy, WarningsAsErrors: '*'), which rebuilds every TU under the
# checker; in environments without clang-tidy the pass is skipped unless
# --tidy-only demands it. CI runs both (see .github/workflows/ci.yml `lint`).
set -euo pipefail

cd "$(dirname "$0")/.."

run_invariants=1
run_tidy=1
tidy_required=0
for arg in "$@"; do
  case "$arg" in
    --tidy-only) run_invariants=0; tidy_required=1 ;;
    --invariants-only) run_tidy=0 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

if [ "$run_invariants" -eq 1 ]; then
  echo "=== project invariants (scripts/check_invariants.py) ==="
  python3 scripts/check_invariants.py
fi

if [ "$run_tidy" -eq 1 ]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy (lint preset, warnings are errors) ==="
    jobs=${CMAKE_BUILD_PARALLEL_LEVEL:-$(nproc 2>/dev/null || echo 4)}
    cmake --preset lint
    cmake --build --preset lint -j "$jobs"
  elif [ "$tidy_required" -eq 1 ]; then
    echo "clang-tidy not found but --tidy-only was requested" >&2
    exit 1
  else
    echo "clang-tidy not available; tidy pass skipped (invariants still enforced)"
  fi
fi

echo "lint gate passed"
