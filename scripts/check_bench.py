#!/usr/bin/env python3
"""Bench regression gate: compares the SIMD speedup reported by
`bench_micro --kernels-json` (results/BENCH_kernels.json) against the
committed baseline (results/BENCH_kernels.baseline.json).

What gates and what doesn't:

  - every `*bitwise_equal` flag in the current report must be true — a
    false flag is a correctness bug, never machine weather;
  - `simd.simd_vs_blocked_speedup` (best vector leg vs the scalar-dispatch
    blocked kernel, same packed operands, best-of-N timing) may not drop
    more than --tolerance (default 15%) below the baseline value. The ratio
    is machine-relative — both kernels run on the same box in the same
    process — so it transfers across runners far better than absolute ms,
    which is why absolute timings are reported but never gated;
  - a runner with no vector ISA at all (available_isas == "scalar") skips
    the speedup comparison with a notice: there is nothing to regress.

Exit status: 0 pass/skip, 1 regression or correctness failure, 2 usage.
Refresh the baseline by running `bench_micro --kernels-json` on a quiet
machine and copying the report over results/BENCH_kernels.baseline.json.
"""

import argparse
import json
import sys
from pathlib import Path


def load(path: Path):
    try:
        with path.open() as f:
            return json.load(f)
    except FileNotFoundError:
        print(f"check_bench: {path} not found", file=sys.stderr)
        return None
    except json.JSONDecodeError as e:
        print(f"check_bench: {path} is not valid JSON: {e}", file=sys.stderr)
        return None


def iter_bitwise_flags(node, prefix=""):
    if isinstance(node, dict):
        for key, val in node.items():
            at = f"{prefix}.{key}" if prefix else key
            if key.endswith("bitwise_equal"):
                yield at, val
            else:
                yield from iter_bitwise_flags(val, at)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", type=Path,
                    default=Path("results/BENCH_kernels.json"))
    ap.add_argument("--baseline", type=Path,
                    default=Path("results/BENCH_kernels.baseline.json"))
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional drop below baseline (default 0.15)")
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    if current is None or baseline is None:
        return 1

    failures = []
    for at, val in iter_bitwise_flags(current):
        if val is not True:
            failures.append(f"{at} is {val!r} (must be true)")

    simd = current.get("simd", {})
    base_simd = baseline.get("simd", {})
    cur_speedup = simd.get("simd_vs_blocked_speedup")
    base_speedup = base_simd.get("simd_vs_blocked_speedup")

    if simd.get("available_isas", "") == "scalar":
        print("check_bench: runner supports no vector ISA; "
              "skipping SIMD speedup comparison")
    elif cur_speedup is None:
        failures.append("current report has no simd.simd_vs_blocked_speedup")
    elif base_speedup is None:
        failures.append("baseline has no simd.simd_vs_blocked_speedup "
                        "(regenerate results/BENCH_kernels.baseline.json)")
    else:
        floor = base_speedup * (1.0 - args.tolerance)
        verdict = "ok" if cur_speedup >= floor else "REGRESSION"
        print(f"check_bench: simd_vs_blocked_speedup {cur_speedup:.3f} "
              f"vs baseline {base_speedup:.3f} "
              f"(floor {floor:.3f}, tolerance {args.tolerance:.0%}): {verdict}")
        print(f"  current best leg: {simd.get('best_leg', '?')}, "
              f"isas: {simd.get('available_isas', '?')}")
        if cur_speedup < floor:
            failures.append(
                f"simd_vs_blocked_speedup regressed to {cur_speedup:.3f} "
                f"(baseline {base_speedup:.3f}, floor {floor:.3f})")

    if failures:
        print("check_bench: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("check_bench: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
