#!/usr/bin/env bash
# One-command CI gate: release build, tier-1 tests, kernel tests at the
# thread-count extremes, TSan over the parallel trainer + obs + serve, bench
# smoke, a loaded run of the batching inference server, static verification
# of every registered multiplier, and (when the tools are available)
# clang-format + clang-tidy.
#
#   scripts/check.sh            # all stages, interactive output
#   scripts/check.sh --ci       # GitHub Actions mode: ::group:: stage
#                               # folding, ::error:: annotations, no colors
#   scripts/check.sh --no-lint  # skip the clang-tidy pass even if available
#
# Build parallelism: CMAKE_BUILD_PARALLEL_LEVEL when set, else nproc.
# Exits nonzero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."

ci_mode=0
run_lint=1
for arg in "$@"; do
  case "$arg" in
    --ci) ci_mode=1 ;;
    --no-lint) run_lint=0 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

jobs=${CMAKE_BUILD_PARALLEL_LEVEL:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}

current_stage=""

begin_stage() {
  current_stage="$1"
  if [ "$ci_mode" -eq 1 ]; then
    echo "::group::$current_stage"
  else
    echo "=== $current_stage ==="
  fi
}

end_stage() {
  if [ "$ci_mode" -eq 1 ]; then
    echo "::endgroup::"
  fi
}

on_error() {
  if [ "$ci_mode" -eq 1 ]; then
    echo "::endgroup::"
    echo "::error::stage failed: ${current_stage:-startup}"
  else
    echo "stage failed: ${current_stage:-startup}" >&2
  fi
}
trap on_error ERR

begin_stage "configure + build (release)"
cmake --preset release
cmake --build --preset release -j "$jobs"
end_stage

# New-code formatting contract (.clang-format). Scoped to the files written
# against it; the older tree predates the config and is left untouched.
if command -v clang-format >/dev/null 2>&1; then
  begin_stage "clang-format (src/obs, trace_report, test_obs)"
  clang-format --dry-run --Werror \
    src/obs/*.hpp src/obs/*.cpp tools/trace_report.cpp tests/test_obs.cpp
  end_stage
else
  echo "clang-format not available; format stage omitted"
fi

begin_stage "tier-1 tests"
ctest --preset release -j "$jobs"
end_stage

begin_stage "kernel property tests at the thread-count extremes"
AMRET_THREADS=1 ./build/tests/test_kernels
AMRET_THREADS=8 ./build/tests/test_kernels
AMRET_THREADS=1 ./build/tests/test_layout
AMRET_THREADS=8 ./build/tests/test_layout
AMRET_THREADS=1 ./build/tests/test_simd
AMRET_THREADS=8 ./build/tests/test_simd
end_stage

# Re-run the SIMD bitwise-equivalence suite with dispatch capped at each ISA
# level this machine supports, probed through `amret_cli simd-info --check`
# (exit 0 = supported). Unsupported legs are skipped rather than silently
# exercising the scalar fallback.
begin_stage "SIMD bitwise equivalence at every supported dispatch cap"
for isa in scalar ssse3 avx2 avx512; do
  if ./build/tools/amret_cli simd-info --check "$isa"; then
    AMRET_SIMD="$isa" ./build/tests/test_simd
  else
    echo "this machine lacks $isa; skipping AMRET_SIMD=$isa leg"
  fi
done
end_stage

begin_stage "parallel trainer + obs + serve + layout + simd + assignment under ThreadSanitizer"
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" \
  --target test_train_parallel test_obs test_serve test_layout test_simd \
  test_assignment
AMRET_THREADS=8 TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/test_train_parallel --gtest_filter='TrainerDeterminism.*'
AMRET_THREADS=8 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_obs
AMRET_THREADS=8 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_serve
AMRET_THREADS=8 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_layout
AMRET_THREADS=8 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_simd
AMRET_THREADS=8 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_assignment
end_stage

begin_stage "bench_micro smoke (--quick; fails on crash only)"
set +e
./build/bench/bench_micro --quick > /dev/null
bench_status=$?
set -e
if [ "$bench_status" -ge 128 ]; then
  echo "bench_micro --quick crashed (exit $bench_status)" >&2
  false
fi
end_stage

# Blocked-vs-scalar kernel throughput with bitwise-equality gating: a layout
# regression that changes results fails here; perf numbers only report
# (machine-dependent). Artifact: results/BENCH_kernels.json.
begin_stage "kernel throughput report (bench_micro --kernels-json)"
./build/bench/bench_micro --kernels-json
end_stage

begin_stage "traced training round-trip"
./build/tools/amret_cli train --epochs 1 --trace build/train_trace.json \
  > /dev/null
./build/tools/trace_report build/train_trace.json --top 5 > /dev/null
end_stage

# Exits nonzero on a reject storm or when nothing is served, so a batching
# or admission regression fails the gate, not just the latency numbers.
begin_stage "serve smoke (batching inference server under load)"
./build/tools/amret_cli serve --duration 2 --train-epochs 1 --clients 8 \
  --max-reject-rate 0.5
end_stage

begin_stage "static verification of the multiplier registry"
./build/tools/amret_cli check
end_stage

# Proves accumulator/rescale/LUT-index bounds for the deployable integer
# graphs; exits nonzero when any config is unprovable. Certificates land in
# results/ (uploaded as CI artifacts by bench-smoke).
begin_stage "static overflow certificates (analyze-static)"
mkdir -p results
./build/tools/amret_cli analyze-static --models lenet,vgg11 --out-dir results
end_stage

# Tiny 2-layer x 3-multiplier sensitivity sweep: the mixed-precision DSE
# must produce a Pareto front where a mixed assignment dominates the best
# uniform, the emitted assignment must train and prove safe, and a second
# run must resume entirely from the content-addressed cache.
begin_stage "mixed-precision exploration smoke (explore + resume-from-cache)"
rm -rf build/dse_cache
./build/tools/amret_cli explore --train-samples 256 --test-samples 96 \
  --baseline-epochs 2 --retrain-epochs 1 --cache-dir build/dse_cache \
  --out-dir results --emit-best results/best_assignment.json \
  --require-mixed-dominates
resume_line=$(./build/tools/amret_cli explore --train-samples 256 \
  --test-samples 96 --baseline-epochs 2 --retrain-epochs 1 \
  --cache-dir build/dse_cache --out-dir results --require-mixed-dominates \
  | grep "from cache")
echo "$resume_line"
case "$resume_line" in
  *" 0 retrained"*) ;;
  *) echo "explore did not resume from the result cache" >&2; false ;;
esac
./build/tools/amret_cli train --assignment results/best_assignment.json \
  --epochs 1 > /dev/null
./build/tools/amret_cli analyze-static --models lenet \
  --assignment results/best_assignment.json --out-dir results
end_stage

if [ "$run_lint" -eq 1 ]; then
  begin_stage "lint gate (invariants + clang-tidy when available)"
  scripts/lint.sh
  end_stage
else
  begin_stage "lint gate (invariants only; --no-lint)"
  scripts/lint.sh --invariants-only
  end_stage
fi

echo "all checks passed"
