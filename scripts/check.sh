#!/usr/bin/env bash
# One-command CI gate: release build, tier-1 tests, static verification of
# every registered multiplier, and (when clang-tidy is available) lint.
#
#   scripts/check.sh            # build + ctest + amret_cli check [+ lint]
#   scripts/check.sh --no-lint  # skip the clang-tidy pass even if available
#
# Exits nonzero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."

run_lint=1
for arg in "$@"; do
  case "$arg" in
    --no-lint) run_lint=0 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "=== configure + build (release) ==="
cmake --preset release
cmake --build --preset release -j "$jobs"

echo "=== tier-1 tests ==="
ctest --preset release -j "$jobs"

echo "=== kernel property tests at the thread-count extremes ==="
AMRET_THREADS=1 ./build/tests/test_kernels
AMRET_THREADS=8 ./build/tests/test_kernels

echo "=== microbatch-parallel trainer under ThreadSanitizer ==="
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" --target test_train_parallel
AMRET_THREADS=8 TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/test_train_parallel --gtest_filter='TrainerDeterminism.*'

echo "=== bench_micro smoke (--quick; fails on crash only) ==="
set +e
./build/bench/bench_micro --quick > /dev/null
bench_status=$?
set -e
if [ "$bench_status" -ge 128 ]; then
  echo "bench_micro --quick crashed (exit $bench_status)" >&2
  exit 1
fi

echo "=== static verification of the multiplier registry ==="
./build/tools/amret_cli check

if [ "$run_lint" -eq 1 ] && command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy (lint preset) ==="
  cmake --preset lint
  cmake --build --preset lint -j "$jobs"
else
  echo "=== clang-tidy not available or skipped; lint stage omitted ==="
fi

echo "all checks passed"
