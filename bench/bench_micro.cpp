/// \file bench_micro.cpp
/// \brief google-benchmark micro-benchmarks for the hot kernels: LUT-based
///        multiplication GEMM (forward), gradient-LUT GEMM (backward),
///        gradient-table construction, exhaustive netlist simulation, and
///        the float conv used for pretraining. Quantifies the Sec. V-B
///        runtime-overhead observation (ours ~1.4-2.6x STE) at kernel level.
#include "amret.hpp"
#include "approx/lut_gemm.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace amret;

void BM_LutForwardGemm(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    const std::int64_t o = 16, p = 256, k = 72;
    const auto lut = appmult::AppMultLut::exact(bits);
    util::Rng rng(1);
    std::vector<std::uint16_t> wq(static_cast<std::size_t>(o * k));
    std::vector<std::uint16_t> xq(static_cast<std::size_t>(p * k));
    for (auto& v : wq) v = static_cast<std::uint16_t>(rng.uniform_u64(lut.domain()));
    for (auto& v : xq) v = static_cast<std::uint16_t>(rng.uniform_u64(lut.domain()));

    approx::LutGemmArgs args;
    args.bits = bits;
    args.lut = lut.table().data();
    args.wq = wq.data();
    args.xq = xq.data();
    args.o = o;
    args.p = p;
    args.k = k;
    std::vector<float> y(static_cast<std::size_t>(p * o));
    for (auto _ : state) {
        approx::lut_forward(args, nullptr, y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * o * p * k);
}
BENCHMARK(BM_LutForwardGemm)->Arg(6)->Arg(7)->Arg(8);

void BM_LutBackwardGemm(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    const std::int64_t o = 16, p = 256, k = 72;
    const auto lut = appmult::AppMultLut::exact(bits);
    const auto grad = core::build_ste_grad(bits);
    util::Rng rng(2);
    std::vector<std::uint16_t> wq(static_cast<std::size_t>(o * k));
    std::vector<std::uint16_t> xq(static_cast<std::size_t>(p * k));
    std::vector<float> gyp(static_cast<std::size_t>(p * o));
    for (auto& v : wq) v = static_cast<std::uint16_t>(rng.uniform_u64(lut.domain()));
    for (auto& v : xq) v = static_cast<std::uint16_t>(rng.uniform_u64(lut.domain()));
    for (auto& v : gyp) v = static_cast<float>(rng.normal());

    approx::LutGemmArgs args;
    args.bits = bits;
    args.lut = lut.table().data();
    args.wq = wq.data();
    args.xq = xq.data();
    args.o = o;
    args.p = p;
    args.k = k;
    std::vector<float> gw(static_cast<std::size_t>(o * k));
    std::vector<float> gx(static_cast<std::size_t>(p * k));
    for (auto _ : state) {
        std::fill(gw.begin(), gw.end(), 0.0f);
        std::fill(gx.begin(), gx.end(), 0.0f);
        approx::lut_backward(args, gyp.data(), grad.dw_table().data(),
                             grad.dx_table().data(), gw.data(), gx.data());
        benchmark::DoNotOptimize(gw.data());
    }
    state.SetItemsProcessed(state.iterations() * o * p * k);
}
BENCHMARK(BM_LutBackwardGemm)->Arg(6)->Arg(7)->Arg(8);

void BM_BuildDifferenceGrad(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    const auto& lut = appmult::Registry::instance().lut(
        bits == 8 ? "mul8u_rm8" : bits == 7 ? "mul7u_rm6" : "mul6u_rm4");
    for (auto _ : state) {
        auto grad = core::build_difference_grad(lut, 8);
        benchmark::DoNotOptimize(grad.dw_table().data());
    }
}
BENCHMARK(BM_BuildDifferenceGrad)->Arg(6)->Arg(7)->Arg(8);

void BM_BuildSteGrad(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto grad = core::build_ste_grad(bits);
        benchmark::DoNotOptimize(grad.dw_table().data());
    }
}
BENCHMARK(BM_BuildSteGrad)->Arg(7)->Arg(8);

void BM_ExhaustiveNetlistSim(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    const auto nl = multgen::build_netlist(multgen::exact_spec(bits));
    for (auto _ : state) {
        auto result = netlist::simulate_exhaustive(nl);
        benchmark::DoNotOptimize(result.outputs.data());
    }
}
BENCHMARK(BM_ExhaustiveNetlistSim)->Arg(6)->Arg(7)->Arg(8);

void BM_FloatConvForward(benchmark::State& state) {
    util::Rng rng(3);
    approx::ApproxConv2d conv(8, 16, 3, 1, 1, rng);
    conv.set_mode(approx::ComputeMode::kFloat);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{4, 8, 16, 16}, rng);
    for (auto _ : state) {
        auto y = conv.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FloatConvForward);

void BM_QuantConvForward(benchmark::State& state) {
    util::Rng rng(4);
    approx::ApproxConv2d conv(8, 16, 3, 1, 1, rng);
    conv.set_multiplier(approx::MultiplierConfig::exact_ste(8));
    conv.set_mode(approx::ComputeMode::kQuantized);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{4, 8, 16, 16}, rng);
    for (auto _ : state) {
        auto y = conv.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_QuantConvForward);

// ------------------------------------------------- threads-vs-throughput --
// Sweeps the runtime thread count over the two hottest kernels. Sizes are
// larger than the single-thread micro-benchmarks above so the per-job pool
// overhead is amortized and scaling is visible on multi-core machines.

void BM_LutForwardGemmThreads(benchmark::State& state) {
    runtime::set_num_threads(static_cast<unsigned>(state.range(0)));
    const unsigned bits = 8;
    const std::int64_t o = 32, p = 1024, k = 72;
    const auto lut = appmult::AppMultLut::exact(bits);
    util::Rng rng(1);
    std::vector<std::uint16_t> wq(static_cast<std::size_t>(o * k));
    std::vector<std::uint16_t> xq(static_cast<std::size_t>(p * k));
    for (auto& v : wq) v = static_cast<std::uint16_t>(rng.uniform_u64(lut.domain()));
    for (auto& v : xq) v = static_cast<std::uint16_t>(rng.uniform_u64(lut.domain()));

    approx::LutGemmArgs args;
    args.bits = bits;
    args.lut = lut.table().data();
    args.wq = wq.data();
    args.xq = xq.data();
    args.o = o;
    args.p = p;
    args.k = k;
    std::vector<float> y(static_cast<std::size_t>(p * o));
    for (auto _ : state) {
        approx::lut_forward(args, nullptr, y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * o * p * k);
    runtime::set_num_threads(1);
}
BENCHMARK(BM_LutForwardGemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_QuantConvForwardThreads(benchmark::State& state) {
    runtime::set_num_threads(static_cast<unsigned>(state.range(0)));
    util::Rng rng(4);
    approx::ApproxConv2d conv(8, 32, 3, 1, 1, rng);
    conv.set_multiplier(approx::MultiplierConfig::exact_ste(8));
    conv.set_mode(approx::ComputeMode::kQuantized);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{8, 8, 32, 32}, rng);
    for (auto _ : state) {
        auto y = conv.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
    runtime::set_num_threads(1);
}
BENCHMARK(BM_QuantConvForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SmoothRow(benchmark::State& state) {
    std::vector<double> row(256);
    for (std::size_t i = 0; i < row.size(); ++i)
        row[i] = static_cast<double>((i * 37) % 97);
    for (auto _ : state) {
        auto s = core::smooth_row(row, static_cast<unsigned>(state.range(0)));
        benchmark::DoNotOptimize(s.data());
    }
}
BENCHMARK(BM_SmoothRow)->Arg(4)->Arg(32);

} // namespace

BENCHMARK_MAIN();
