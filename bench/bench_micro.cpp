/// \file bench_micro.cpp
/// \brief google-benchmark micro-benchmarks for the hot kernels: LUT-based
///        multiplication GEMM (forward), gradient-LUT GEMM (backward),
///        gradient-table construction, exhaustive netlist simulation, and
///        the float conv used for pretraining. Quantifies the Sec. V-B
///        runtime-overhead observation (ours ~1.4-2.6x STE) at kernel level.
///
/// Besides the google-benchmark suite, three standalone modes:
///   --quick         tiny min-time smoke run (CI crash detection)
///   --tile-sweep    P/O/K tile-size sweep of the tiled AND blocked kernels
///                   plus an old-vs-new LUT-GEMM comparison (pre-refactor
///                   row-streaming kernel vs the tiled src/kernels one).
///                   The blocked leg is swept once per supported SIMD
///                   dispatch level (kernels::simd): CSVs land in results/,
///                   the portable (scalar) winner plus per-ISA refinements
///                   are persisted to results/kernel_tuning.json in the
///                   shape kernels::Tuning::resolve() scans, and each ISA
///                   also gets a standalone results/kernel_tuning_<isa>.json
///                   (usable directly via AMRET_TUNING_FILE; uploaded by the
///                   bench-smoke workflow). Override with AMRET_TILES=PxOxK.
///   --kernels-json  writes results/BENCH_kernels.json: blocked-vs-scalar
///                   LUT-GEMM forward throughput against the PR-3
///                   row-streaming baseline, a "simd" section timing the
///                   vector paths (8-bit gather leg, 4-bit nibble/pshufb
///                   leg) per ISA against the scalar-dispatch blocked
///                   kernel, plus a quantized-conv end-to-end number — all
///                   with bitwise-equality flags. Run by scripts/check.sh
///                   and the bench-smoke workflow; scripts/check_bench.py
///                   gates the simd_vs_blocked_speedup field against the
///                   committed baseline.
#include "amret.hpp"

#include "kernels/simd/simd.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

namespace {

using namespace amret;

void fill_codes(std::vector<std::uint16_t>& v, const appmult::AppMultLut& lut,
                util::Rng& rng) {
    for (auto& c : v) c = static_cast<std::uint16_t>(rng.uniform_u64(lut.domain()));
}

void BM_LutForwardGemm(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    const std::int64_t o = 16, p = 256, k = 72;
    const auto lut = appmult::AppMultLut::exact(bits);
    util::Rng rng(1);
    std::vector<std::uint16_t> wq(static_cast<std::size_t>(o * k));
    std::vector<std::uint16_t> xq(static_cast<std::size_t>(p * k));
    fill_codes(wq, lut, rng);
    fill_codes(xq, lut, rng);

    kernels::LutGemmArgs args;
    args.bits = bits;
    args.lut = lut.table().data();
    args.wq = wq.data();
    args.xq = xq.data();
    args.o = o;
    args.p = p;
    args.k = k;
    std::vector<float> y(static_cast<std::size_t>(p * o));
    kernels::Workspace ws;
    for (auto _ : state) {
        ws.reset();
        kernels::lut_forward(args, nullptr, y.data(), ws);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * o * p * k);
}
BENCHMARK(BM_LutForwardGemm)->Arg(6)->Arg(7)->Arg(8);

void BM_LutBackwardGemm(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    const std::int64_t o = 16, p = 256, k = 72;
    const auto lut = appmult::AppMultLut::exact(bits);
    const auto grad = core::build_ste_grad(bits);
    util::Rng rng(2);
    std::vector<std::uint16_t> wq(static_cast<std::size_t>(o * k));
    std::vector<std::uint16_t> xq(static_cast<std::size_t>(p * k));
    std::vector<float> gyp(static_cast<std::size_t>(p * o));
    fill_codes(wq, lut, rng);
    fill_codes(xq, lut, rng);
    for (auto& v : gyp) v = static_cast<float>(rng.normal());

    kernels::LutGemmArgs args;
    args.bits = bits;
    args.lut = lut.table().data();
    args.wq = wq.data();
    args.xq = xq.data();
    args.o = o;
    args.p = p;
    args.k = k;
    std::vector<float> gw(static_cast<std::size_t>(o * k));
    std::vector<float> gx(static_cast<std::size_t>(p * k));
    for (auto _ : state) {
        std::fill(gw.begin(), gw.end(), 0.0f);
        std::fill(gx.begin(), gx.end(), 0.0f);
        kernels::lut_backward(args, gyp.data(), grad.dw_table().data(),
                              grad.dx_table().data(), gw.data(), gx.data());
        benchmark::DoNotOptimize(gw.data());
    }
    state.SetItemsProcessed(state.iterations() * o * p * k);
}
BENCHMARK(BM_LutBackwardGemm)->Arg(6)->Arg(7)->Arg(8);

void BM_BuildDifferenceGrad(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    const auto& lut = appmult::Registry::instance().lut(
        bits == 8 ? "mul8u_rm8" : bits == 7 ? "mul7u_rm6" : "mul6u_rm4");
    for (auto _ : state) {
        auto grad = core::build_difference_grad(lut, 8);
        benchmark::DoNotOptimize(grad.dw_table().data());
    }
}
BENCHMARK(BM_BuildDifferenceGrad)->Arg(6)->Arg(7)->Arg(8);

void BM_BuildSteGrad(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto grad = core::build_ste_grad(bits);
        benchmark::DoNotOptimize(grad.dw_table().data());
    }
}
BENCHMARK(BM_BuildSteGrad)->Arg(7)->Arg(8);

void BM_ExhaustiveNetlistSim(benchmark::State& state) {
    const unsigned bits = static_cast<unsigned>(state.range(0));
    const auto nl = multgen::build_netlist(multgen::exact_spec(bits));
    for (auto _ : state) {
        auto result = netlist::simulate_exhaustive(nl);
        benchmark::DoNotOptimize(result.outputs.data());
    }
}
BENCHMARK(BM_ExhaustiveNetlistSim)->Arg(6)->Arg(7)->Arg(8);

void BM_FloatConvForward(benchmark::State& state) {
    util::Rng rng(3);
    approx::ApproxConv2d conv(8, 16, 3, 1, 1, rng);
    conv.set_mode(approx::ComputeMode::kFloat);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{4, 8, 16, 16}, rng);
    nn::Context ctx;
    for (auto _ : state) {
        auto y = conv.forward(x, ctx);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FloatConvForward);

void BM_QuantConvForward(benchmark::State& state) {
    util::Rng rng(4);
    approx::ApproxConv2d conv(8, 16, 3, 1, 1, rng);
    conv.set_multiplier(approx::MultiplierConfig::exact_ste(8));
    conv.set_mode(approx::ComputeMode::kQuantized);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{4, 8, 16, 16}, rng);
    nn::Context ctx;
    for (auto _ : state) {
        auto y = conv.forward(x, ctx);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_QuantConvForward);

// ------------------------------------------------- threads-vs-throughput --
// Sweeps the runtime thread count over the two hottest kernels. Sizes are
// larger than the single-thread micro-benchmarks above so the per-job pool
// overhead is amortized and scaling is visible on multi-core machines.

void BM_LutForwardGemmThreads(benchmark::State& state) {
    runtime::set_num_threads(static_cast<unsigned>(state.range(0)));
    const unsigned bits = 8;
    const std::int64_t o = 32, p = 1024, k = 72;
    const auto lut = appmult::AppMultLut::exact(bits);
    util::Rng rng(1);
    std::vector<std::uint16_t> wq(static_cast<std::size_t>(o * k));
    std::vector<std::uint16_t> xq(static_cast<std::size_t>(p * k));
    fill_codes(wq, lut, rng);
    fill_codes(xq, lut, rng);

    kernels::LutGemmArgs args;
    args.bits = bits;
    args.lut = lut.table().data();
    args.wq = wq.data();
    args.xq = xq.data();
    args.o = o;
    args.p = p;
    args.k = k;
    std::vector<float> y(static_cast<std::size_t>(p * o));
    kernels::Workspace ws;
    for (auto _ : state) {
        ws.reset();
        kernels::lut_forward(args, nullptr, y.data(), ws);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * o * p * k);
    runtime::set_num_threads(1);
}
BENCHMARK(BM_LutForwardGemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_QuantConvForwardThreads(benchmark::State& state) {
    runtime::set_num_threads(static_cast<unsigned>(state.range(0)));
    util::Rng rng(4);
    approx::ApproxConv2d conv(8, 32, 3, 1, 1, rng);
    conv.set_multiplier(approx::MultiplierConfig::exact_ste(8));
    conv.set_mode(approx::ComputeMode::kQuantized);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{8, 8, 32, 32}, rng);
    nn::Context ctx;
    for (auto _ : state) {
        auto y = conv.forward(x, ctx);
        benchmark::DoNotOptimize(y.data());
    }
    runtime::set_num_threads(1);
}
BENCHMARK(BM_QuantConvForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SmoothRow(benchmark::State& state) {
    std::vector<double> row(256);
    for (std::size_t i = 0; i < row.size(); ++i)
        row[i] = static_cast<double>((i * 37) % 97);
    for (auto _ : state) {
        auto s = core::smooth_row(row, static_cast<unsigned>(state.range(0)));
        benchmark::DoNotOptimize(s.data());
    }
}
BENCHMARK(BM_SmoothRow)->Arg(4)->Arg(32);

// ------------------------------------------------------------ tile sweep --

/// Pre-refactor forward kernel (the row-streaming src/approx/lut_gemm.cpp
/// implementation, reproduced verbatim): no K blocking, no accumulator
/// unrolling, row sums recomputed per call. Kept here as the baseline the
/// tiled kernel is measured against.
void lut_forward_rowstream(const kernels::LutGemmArgs& args, const float* bias,
                           float* y) {
    const std::int64_t o_rows = args.o, p_rows = args.p, depth = args.k;
    const unsigned bits = args.bits;

    std::vector<std::int64_t> sum_w(static_cast<std::size_t>(o_rows), 0);
    runtime::parallel_for(0, o_rows, runtime::grain_for(o_rows, 8),
                          [&](std::int64_t ob, std::int64_t oe) {
        for (std::int64_t i = ob; i < oe; ++i) {
            const std::uint16_t* row = args.wq + i * depth;
            std::int64_t s = 0;
            for (std::int64_t kk = 0; kk < depth; ++kk) s += row[kk];
            sum_w[static_cast<std::size_t>(i)] = s;
        }
    });

    runtime::parallel_for(0, p_rows, runtime::grain_for(p_rows, 4),
                          [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t pp = pb; pp < pe; ++pp) {
            const std::uint16_t* xrow = args.xq + pp * depth;
            std::int64_t sum_x = 0;
            for (std::int64_t kk = 0; kk < depth; ++kk) sum_x += xrow[kk];

            float* yrow = y + pp * o_rows;
            for (std::int64_t oo = 0; oo < o_rows; ++oo) {
                const std::uint16_t* wrow = args.wq + oo * depth;
                std::int64_t acc = 0;
                for (std::int64_t kk = 0; kk < depth; ++kk) {
                    acc += args.lut[(static_cast<std::uint32_t>(wrow[kk]) << bits) |
                                    xrow[kk]];
                }
                const std::int32_t zw = args.row_zero_w(oo);
                const float ss = args.row_scale_w(oo) * args.scale_x;
                const std::int64_t kzz =
                    depth * static_cast<std::int64_t>(zw) * args.zero_x;
                const std::int64_t corrected =
                    acc -
                    static_cast<std::int64_t>(args.zero_x) *
                        sum_w[static_cast<std::size_t>(oo)] -
                    static_cast<std::int64_t>(zw) * sum_x + kzz;
                yrow[oo] =
                    ss * static_cast<float>(corrected) + (bias ? bias[oo] : 0.0f);
            }
        }
    });
}

struct SweepGemm {
    appmult::AppMultLut lut = appmult::AppMultLut::exact(8);
    std::vector<std::uint16_t> wq, xq;
    std::vector<float> y;
    kernels::LutGemmArgs args;

    SweepGemm(std::int64_t o, std::int64_t p, std::int64_t k) {
        util::Rng rng(11);
        wq.resize(static_cast<std::size_t>(o * k));
        xq.resize(static_cast<std::size_t>(p * k));
        y.resize(static_cast<std::size_t>(p * o));
        fill_codes(wq, lut, rng);
        fill_codes(xq, lut, rng);
        args.bits = 8;
        args.lut = lut.table().data();
        args.wq = wq.data();
        args.xq = xq.data();
        args.o = o;
        args.p = p;
        args.k = k;
        args.scale_w = 0.01f;
        args.scale_x = 0.02f;
        args.zero_w = 120;
        args.zero_x = 130;
    }
};

template <typename Fn>
double time_ms(int iters, Fn&& fn) {
    fn(); // warm up
    obs::TimedSpan sw("bench.tile_sweep.timed");
    for (int i = 0; i < iters; ++i) fn();
    return sw.millis() / iters;
}

/// Best-of-N per-iteration time: the minimum is the least noisy estimator of
/// kernel cost under scheduler/frequency jitter, so the BENCH_kernels.json
/// speedups compare kernels rather than machine weather.
template <typename Fn>
double time_ms_best(int iters, Fn&& fn) {
    fn(); // warm up
    double best = 1e300;
    for (int i = 0; i < iters; ++i) {
        obs::TimedSpan sw("bench.kernels_json.timed");
        fn();
        best = std::min(best, sw.millis());
    }
    return best;
}

/// Dispatch levels to measure: scalar (the PR-8 blocked oracle) first, then
/// every vector level this build+machine supports. Levels the CPU lacks are
/// simply absent — the JSON consumers treat missing ISAs as "not available
/// here", never as a failure.
std::vector<kernels::simd::Isa> supported_isas() {
    std::vector<kernels::simd::Isa> v{kernels::simd::Isa::kScalar};
    for (const auto isa :
         {kernels::simd::Isa::kSsse3, kernels::simd::Isa::kAvx2,
          kernels::simd::Isa::kAvx512})
        if (kernels::simd::supported(isa)) v.push_back(isa);
    return v;
}

std::FILE* open_results_csv(const char* name, const char* header) {
    std::filesystem::create_directories("results");
    const std::string path = std::string("results/") + name;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f) std::fprintf(f, "%s\n", header);
    return f;
}

int run_tile_sweep() {
    const int iters = 10;

    // Old (row-streaming) vs new (tiled) forward over growing shapes, with a
    // bitwise-equality check: both kernels implement the same Eq. (8)
    // epilogue, so their outputs must memcmp equal.
    std::FILE* cmp = open_results_csv(
        "lut_gemm_compare.csv", "o,p,k,old_ms,new_ms,speedup,bitwise_equal");
    if (!cmp) {
        std::fprintf(stderr, "cannot open results/lut_gemm_compare.csv\n");
        return 1;
    }
    struct Shape3 {
        std::int64_t o, p, k;
    };
    const Shape3 shapes[] = {
        {16, 256, 72}, {32, 1024, 288}, {64, 1024, 576}, {128, 2048, 288}};
    bool all_equal = true;
    for (const auto& s : shapes) {
        SweepGemm g(s.o, s.p, s.k);
        std::vector<float> y_old(g.y.size());
        kernels::Workspace ws;
        const double old_ms =
            time_ms(iters, [&] { lut_forward_rowstream(g.args, nullptr, y_old.data()); });
        const double new_ms = time_ms(iters, [&] {
            ws.reset();
            kernels::lut_forward(g.args, nullptr, g.y.data(), ws);
        });
        const bool equal =
            std::memcmp(y_old.data(), g.y.data(), g.y.size() * sizeof(float)) == 0;
        all_equal = all_equal && equal;
        std::fprintf(cmp, "%lld,%lld,%lld,%.4f,%.4f,%.3f,%d\n",
                     static_cast<long long>(s.o), static_cast<long long>(s.p),
                     static_cast<long long>(s.k), old_ms, new_ms, old_ms / new_ms,
                     equal ? 1 : 0);
        std::printf("compare o=%lld p=%lld k=%lld: old %.3f ms, new %.3f ms, "
                    "speedup %.2fx, bitwise_equal=%d\n",
                    static_cast<long long>(s.o), static_cast<long long>(s.p),
                    static_cast<long long>(s.k), old_ms, new_ms, old_ms / new_ms,
                    equal ? 1 : 0);
    }
    std::fclose(cmp);

    // P/O/K block-dimension sweep on one conv-like shape, timing both the
    // tiled row-major kernel and the blocked (panelized) kernel per config.
    // Weight panels are packed outside the timed region — weights are static
    // at deployment — while the blocked forward itself is what the tuner
    // ranks. The blocked leg runs once per supported SIMD dispatch level
    // (the winning tile differs between the scalar walk and the gather
    // kernels); the scalar winner plus per-ISA refinements are persisted to
    // results/kernel_tuning.json for kernels::Tuning::resolve().
    std::FILE* sweep = open_results_csv(
        "kernel_tile_sweep.csv",
        "tp,to,tk,isa,tiled_ms,tiled_gops,blocked_ms,blocked_gops");
    if (!sweep) {
        std::fprintf(stderr, "cannot open results/kernel_tile_sweep.csv\n");
        return 1;
    }
    SweepGemm g(64, 1024, 576);
    std::vector<float> y_ref(g.y.size());
    kernels::Workspace ws;
    kernels::Workspace pack_ws;
    ws.reset();
    kernels::lut_forward(g.args, nullptr, y_ref.data(), ws);
    const double ops = static_cast<double>(g.args.o * g.args.p * g.args.k);
    const std::vector<kernels::simd::Isa> isas = supported_isas();
    struct IsaBest {
        kernels::Tuning t;
        double ms = -1.0;
    };
    IsaBest best[4];
    for (const std::int64_t tp : {4, 8, 16}) {
        for (const std::int64_t to : {8, 16, 32, 64}) {
            for (const std::int64_t tk : {64, 128, 256, 576}) {
                const kernels::TileConfig tile{tp, to, tk};
                const double ms = time_ms(iters, [&] {
                    ws.reset();
                    kernels::lut_forward(g.args, nullptr, g.y.data(), ws, tile);
                });
                if (std::memcmp(y_ref.data(), g.y.data(),
                                g.y.size() * sizeof(float)) != 0) {
                    std::fprintf(stderr, "tile (%lld,%lld,%lld) changed results\n",
                                 static_cast<long long>(tp),
                                 static_cast<long long>(to),
                                 static_cast<long long>(tk));
                    return 1;
                }

                pack_ws.reset();
                kernels::BlockedGemmArgs bargs;
                bargs.bits = g.args.bits;
                bargs.lut = g.args.lut;
                bargs.w = kernels::pack_weight_panels(
                    g.wq.data(), g.args.bits,
                    kernels::make_panel_plan(g.args.o, g.args.k, to, tk),
                    pack_ws);
                bargs.x = kernels::pack_activation_panels(
                    g.xq.data(),
                    kernels::make_panel_plan(g.args.p, g.args.k, tp, tk),
                    pack_ws);
                bargs.o = g.args.o;
                bargs.p = g.args.p;
                bargs.k = g.args.k;
                bargs.scale_w = g.args.scale_w;
                bargs.scale_x = g.args.scale_x;
                bargs.zero_w = g.args.zero_w;
                bargs.zero_x = g.args.zero_x;
                for (const auto isa : isas) {
                    kernels::simd::set_isa_for_test(isa);
                    const double bms = time_ms(iters, [&] {
                        ws.reset();
                        kernels::lut_forward_blocked(bargs, nullptr, g.y.data(),
                                                     ws);
                    });
                    kernels::simd::clear_isa_override();
                    if (std::memcmp(y_ref.data(), g.y.data(),
                                    g.y.size() * sizeof(float)) != 0) {
                        std::fprintf(
                            stderr,
                            "blocked tile (%lld,%lld,%lld) [%s] changed results\n",
                            static_cast<long long>(tp),
                            static_cast<long long>(to),
                            static_cast<long long>(tk),
                            kernels::simd::isa_name(isa));
                        return 1;
                    }
                    IsaBest& b = best[static_cast<int>(isa)];
                    if (b.ms < 0.0 || bms < b.ms) {
                        b.ms = bms;
                        b.t.tp = tp;
                        b.t.to = to;
                        b.t.tk = tk;
                    }
                    std::fprintf(sweep, "%lld,%lld,%lld,%s,%.4f,%.3f,%.4f,%.3f\n",
                                 static_cast<long long>(tp),
                                 static_cast<long long>(to),
                                 static_cast<long long>(tk),
                                 kernels::simd::isa_name(isa), ms,
                                 ops / ms / 1e6, bms, ops / bms / 1e6);
                }
            }
        }
    }
    std::fclose(sweep);
    std::printf("tile sweep written to results/kernel_tile_sweep.csv\n");

    // Persist the winners in the exact shape Tuning::resolve() scans for:
    // top-level tp/to/tk carry the portable scalar pick, the "isa" object
    // carries one refinement block per vector level; resolve() shadows the
    // top-level fields with the block matching kernels::simd::select().
    std::FILE* tuned = std::fopen("results/kernel_tuning.json", "w");
    if (!tuned) {
        std::fprintf(stderr, "cannot open results/kernel_tuning.json\n");
        return 1;
    }
    const IsaBest& sb = best[static_cast<int>(kernels::simd::Isa::kScalar)];
    std::fprintf(tuned,
                 "{\n"
                 "  \"source\": \"bench_micro --tile-sweep\",\n"
                 "  \"shape\": {\"o\": %lld, \"p\": %lld, \"k\": %lld},\n"
                 "  \"blocked_ms\": %.4f,\n"
                 "  \"tp\": %lld,\n"
                 "  \"to\": %lld,\n"
                 "  \"tk\": %lld,\n"
                 "  \"isa\": {\n",
                 static_cast<long long>(g.args.o), static_cast<long long>(g.args.p),
                 static_cast<long long>(g.args.k), sb.ms,
                 static_cast<long long>(sb.t.tp), static_cast<long long>(sb.t.to),
                 static_cast<long long>(sb.t.tk));
    for (std::size_t i = 1; i < isas.size(); ++i) {
        const IsaBest& b = best[static_cast<int>(isas[i])];
        std::fprintf(tuned,
                     "    \"%s\": {\"tp\": %lld, \"to\": %lld, \"tk\": %lld, "
                     "\"blocked_ms\": %.4f}%s\n",
                     kernels::simd::isa_name(isas[i]),
                     static_cast<long long>(b.t.tp),
                     static_cast<long long>(b.t.to),
                     static_cast<long long>(b.t.tk), b.ms,
                     i + 1 < isas.size() ? "," : "");
    }
    std::fprintf(tuned, "  }\n}\n");
    std::fclose(tuned);

    // One standalone file per level, directly loadable via AMRET_TUNING_FILE
    // and uploaded as artifacts by the bench-smoke workflow.
    for (const auto isa : isas) {
        const IsaBest& b = best[static_cast<int>(isa)];
        const std::string path = std::string("results/kernel_tuning_") +
                                 kernels::simd::isa_name(isa) + ".json";
        std::FILE* pf = std::fopen(path.c_str(), "w");
        if (!pf) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 1;
        }
        std::fprintf(pf,
                     "{\n"
                     "  \"source\": \"bench_micro --tile-sweep\",\n"
                     "  \"isa\": \"%s\",\n"
                     "  \"blocked_ms\": %.4f,\n"
                     "  \"tp\": %lld,\n"
                     "  \"to\": %lld,\n"
                     "  \"tk\": %lld\n"
                     "}\n",
                     kernels::simd::isa_name(isa), b.ms,
                     static_cast<long long>(b.t.tp),
                     static_cast<long long>(b.t.to),
                     static_cast<long long>(b.t.tk));
        std::fclose(pf);
        std::printf("best blocked tiles [%s] %lldx%lldx%lld (%.4f ms)\n",
                    kernels::simd::isa_name(isa),
                    static_cast<long long>(b.t.tp),
                    static_cast<long long>(b.t.to),
                    static_cast<long long>(b.t.tk), b.ms);
    }
    std::printf("wrote results/kernel_tuning.json (+ per-ISA "
                "results/kernel_tuning_<isa>.json)\n");
    if (!all_equal) {
        std::fprintf(stderr, "old/new LUT-GEMM outputs differ\n");
        return 1;
    }
    return 0;
}

// --------------------------------------------------------- BENCH_kernels --

/// Emits results/BENCH_kernels.json: LUT-GEMM forward throughput of the
/// blocked and tiled kernels against the PR-3 row-streaming baseline, plus a
/// quantized-conv end-to-end scalar-vs-blocked comparison. Every leg carries
/// a bitwise-equality flag; a false flag fails the run (a perf shortfall
/// only prints — machine-dependent numbers should not gate CI).
int run_kernels_json() {
    const int iters = 20;

    SweepGemm g(64, 1024, 576);
    std::vector<float> y_base(g.y.size());
    std::vector<float> y_tiled(g.y.size());
    std::vector<float> y_blocked(g.y.size());
    kernels::Workspace ws;
    const double rowstream_ms = time_ms_best(
        iters, [&] { lut_forward_rowstream(g.args, nullptr, y_base.data()); });
    const double tiled_ms = time_ms_best(iters, [&] {
        ws.reset();
        kernels::lut_forward(g.args, nullptr, y_tiled.data(), ws);
    });

    const kernels::Tuning& tiles = kernels::Tuning::current();
    kernels::Workspace pack_ws;
    kernels::BlockedGemmArgs bargs;
    bargs.bits = g.args.bits;
    bargs.lut = g.args.lut;
    bargs.w = kernels::pack_weight_panels(
        g.wq.data(), g.args.bits,
        kernels::make_panel_plan(g.args.o, g.args.k, tiles.to, tiles.tk),
        pack_ws);
    bargs.x = kernels::pack_activation_panels(
        g.xq.data(), kernels::make_panel_plan(g.args.p, g.args.k, tiles.tp, tiles.tk),
        pack_ws);
    bargs.o = g.args.o;
    bargs.p = g.args.p;
    bargs.k = g.args.k;
    bargs.scale_w = g.args.scale_w;
    bargs.scale_x = g.args.scale_x;
    bargs.zero_w = g.args.zero_w;
    bargs.zero_x = g.args.zero_x;
    // The "blocked" leg is pinned to scalar dispatch so it stays the PR-8
    // blocked kernel — the baseline the SIMD legs below are measured against.
    kernels::simd::set_isa_for_test(kernels::simd::Isa::kScalar);
    const double blocked_ms = time_ms_best(iters, [&] {
        ws.reset();
        kernels::lut_forward_blocked(bargs, nullptr, y_blocked.data(), ws);
    });
    kernels::simd::clear_isa_override();

    const bool tiled_eq =
        std::memcmp(y_base.data(), y_tiled.data(), g.y.size() * sizeof(float)) == 0;
    const bool blocked_eq =
        std::memcmp(y_base.data(), y_blocked.data(), g.y.size() * sizeof(float)) ==
        0;

    // ------------------------------------------------------- SIMD legs ----
    // Two operand regimes hit different vector kernels: 8-bit codes run the
    // gather path, 4-bit codes with nibble-packed activations run the
    // pshufb path. Each leg times every supported dispatch level against
    // the scalar-dispatch blocked kernel on the same packed operands; every
    // vector output must memcmp-equal the scalar one (int64 accumulator).
    const std::vector<kernels::simd::Isa> isas = supported_isas();
    bool simd_all_eq = true;
    double best_overall_speedup = 0.0;
    std::string best_overall = "none";
    std::vector<float> y_leg(g.y.size()), y_leg_ref(g.y.size());
    auto time_leg = [&](const kernels::BlockedGemmArgs& la, float* out,
                        kernels::simd::Isa isa) {
        kernels::simd::set_isa_for_test(isa);
        const double ms = time_ms_best(iters, [&] {
            ws.reset();
            kernels::lut_forward_blocked(la, nullptr, out, ws);
        });
        kernels::simd::clear_isa_override();
        return ms;
    };
    // Emits the per-leg JSON object; \p oracle (when given) additionally
    // checks the scalar-dispatch reference itself, closing the loop back to
    // the row-streaming output.
    auto leg_json = [&](const char* leg, const kernels::BlockedGemmArgs& la,
                        const float* oracle) {
        const std::size_t bytes = g.y.size() * sizeof(float);
        const double scalar_ms = time_leg(la, y_leg_ref.data(),
                                          kernels::simd::Isa::kScalar);
        if (oracle != nullptr)
            simd_all_eq = simd_all_eq &&
                          std::memcmp(oracle, y_leg_ref.data(), bytes) == 0;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    \"%s\": {\n      \"scalar_ms\": %.4f,\n", leg,
                      scalar_ms);
        std::string j = buf;
        const char* best_isa = "scalar";
        double best_speedup = 0.0;
        for (std::size_t i = 1; i < isas.size(); ++i) {
            const char* name = kernels::simd::isa_name(isas[i]);
            const double ms = time_leg(la, y_leg.data(), isas[i]);
            const bool eq =
                std::memcmp(y_leg_ref.data(), y_leg.data(), bytes) == 0;
            simd_all_eq = simd_all_eq && eq;
            const double speedup = scalar_ms / ms;
            if (speedup > best_speedup) {
                best_speedup = speedup;
                best_isa = name;
            }
            std::snprintf(buf, sizeof(buf),
                          "      \"%s_ms\": %.4f,\n"
                          "      \"%s_speedup_vs_scalar\": %.3f,\n"
                          "      \"%s_bitwise_equal\": %s,\n",
                          name, ms, name, speedup, name, eq ? "true" : "false");
            j += buf;
            std::printf("simd %s [%s]: %.3f ms (%.2fx vs scalar blocked), "
                        "bitwise_equal=%d\n",
                        leg, name, ms, speedup, eq ? 1 : 0);
        }
        if (best_speedup > best_overall_speedup) {
            best_overall_speedup = best_speedup;
            best_overall = std::string(leg) + "/" + best_isa;
        }
        std::snprintf(buf, sizeof(buf),
                      "      \"best_isa\": \"%s\",\n"
                      "      \"best_speedup_vs_scalar\": %.3f\n    }",
                      best_isa, best_speedup);
        j += buf;
        return j;
    };

    // 4-bit leg: same GEMM shape, 4-bit exact product LUT, activations
    // nibble-packed at pack time (tr=16 keeps every panel pshufb-eligible).
    const appmult::AppMultLut lut4 = appmult::AppMultLut::exact(4);
    util::Rng rng4(12);
    std::vector<std::uint16_t> wq4(g.wq.size()), xq4(g.xq.size());
    fill_codes(wq4, lut4, rng4);
    fill_codes(xq4, lut4, rng4);
    kernels::BlockedGemmArgs bargs4;
    bargs4.bits = 4;
    bargs4.lut = lut4.table().data();
    bargs4.w = kernels::pack_weight_panels(
        wq4.data(), 4, kernels::make_panel_plan(g.args.o, g.args.k, tiles.to, tiles.tk),
        pack_ws);
    kernels::ActPanels x4 = kernels::pack_activation_panels(
        xq4.data(), kernels::make_panel_plan(g.args.p, g.args.k, 16, tiles.tk),
        pack_ws);
    kernels::attach_packed4(x4, 4, pack_ws);
    bargs4.x = x4;
    bargs4.o = g.args.o;
    bargs4.p = g.args.p;
    bargs4.k = g.args.k;
    bargs4.scale_w = g.args.scale_w;
    bargs4.scale_x = g.args.scale_x;
    bargs4.zero_w = 7;
    bargs4.zero_x = 9;

    std::string available;
    for (const auto isa : isas) {
        if (!available.empty()) available += ",";
        available += kernels::simd::isa_name(isa);
    }
    std::string simd_json = "  \"simd\": {\n";
    simd_json += std::string("    \"active_default\": \"") +
                 kernels::simd::isa_name(kernels::simd::select()) + "\",\n";
    simd_json += "    \"available_isas\": \"" + available + "\",\n";
    simd_json += leg_json("gather_bits8", bargs, y_base.data()) + ",\n";
    simd_json += leg_json("nibble_bits4", bargs4, nullptr) + ",\n";
    {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "    \"best_leg\": \"%s\",\n"
                      "    \"simd_vs_blocked_speedup\": %.3f,\n"
                      "    \"target_simd_vs_blocked\": 1.5,\n"
                      "    \"bitwise_equal\": %s\n  }",
                      best_overall.c_str(), best_overall_speedup,
                      simd_all_eq ? "true" : "false");
        simd_json += buf;
    }

    // Quantized conv end-to-end under each engine layout mode: same seeds,
    // same forward count, so observer state evolves identically and the two
    // output tensors must memcmp equal (the layer-level bitwise contract).
    double conv_ms[2] = {0.0, 0.0};
    tensor::Tensor conv_y[2];
    for (int m = 0; m < 2; ++m) {
        kernels::set_layout_mode(m == 0 ? kernels::LayoutMode::kScalar
                                        : kernels::LayoutMode::kBlocked);
        util::Rng rng(4);
        approx::ApproxConv2d conv(8, 32, 3, 1, 1, rng);
        conv.set_multiplier(approx::MultiplierConfig::exact_ste(8));
        conv.set_mode(approx::ComputeMode::kQuantized);
        util::Rng xrng(5);
        const tensor::Tensor x =
            tensor::Tensor::randn(tensor::Shape{8, 8, 32, 32}, xrng);
        nn::Context ctx;
        conv_ms[m] = time_ms_best(iters, [&] {
            auto y = conv.forward(x, ctx);
            benchmark::DoNotOptimize(y.data());
        });
        conv_y[m] = conv.forward(x, ctx);
    }
    kernels::clear_layout_mode_override();
    const bool conv_eq =
        conv_y[0].shape() == conv_y[1].shape() &&
        std::memcmp(conv_y[0].data(), conv_y[1].data(),
                    static_cast<std::size_t>(conv_y[0].numel()) * sizeof(float)) ==
            0;

    std::filesystem::create_directories("results");
    std::FILE* f = std::fopen("results/BENCH_kernels.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot open results/BENCH_kernels.json\n");
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"lut_gemm_forward\": {\n"
        "    \"o\": %lld, \"p\": %lld, \"k\": %lld, \"bits\": %u,\n"
        "    \"tiles\": {\"rows_p\": %lld, \"rows_o\": %lld, \"depth\": %lld},\n"
        "    \"rowstream_ms\": %.4f,\n"
        "    \"tiled_ms\": %.4f,\n"
        "    \"blocked_ms\": %.4f,\n"
        "    \"tiled_vs_rowstream_speedup\": %.3f,\n"
        "    \"blocked_vs_rowstream_speedup\": %.3f,\n"
        "    \"target_blocked_vs_rowstream\": 1.3,\n"
        "    \"tiled_bitwise_equal\": %s,\n"
        "    \"blocked_bitwise_equal\": %s\n"
        "  },\n"
        "%s,\n"
        "  \"conv_forward_end_to_end\": {\n"
        "    \"batch\": 8, \"in_ch\": 8, \"out_ch\": 32, \"hw\": 32,\n"
        "    \"scalar_ms\": %.4f,\n"
        "    \"blocked_ms\": %.4f,\n"
        "    \"blocked_vs_scalar_speedup\": %.3f,\n"
        "    \"bitwise_equal\": %s\n"
        "  }\n"
        "}\n",
        static_cast<long long>(g.args.o), static_cast<long long>(g.args.p),
        static_cast<long long>(g.args.k), g.args.bits,
        static_cast<long long>(tiles.tp), static_cast<long long>(tiles.to),
        static_cast<long long>(tiles.tk), rowstream_ms, tiled_ms, blocked_ms,
        rowstream_ms / tiled_ms, rowstream_ms / blocked_ms,
        tiled_eq ? "true" : "false", blocked_eq ? "true" : "false",
        simd_json.c_str(), conv_ms[0], conv_ms[1], conv_ms[0] / conv_ms[1],
        conv_eq ? "true" : "false");
    std::fclose(f);

    std::printf("lut_gemm forward (o=%lld p=%lld k=%lld): rowstream %.3f ms, "
                "tiled %.3f ms (%.2fx), blocked %.3f ms (%.2fx)\n",
                static_cast<long long>(g.args.o), static_cast<long long>(g.args.p),
                static_cast<long long>(g.args.k), rowstream_ms, tiled_ms,
                rowstream_ms / tiled_ms, blocked_ms, rowstream_ms / blocked_ms);
    std::printf("conv end-to-end: scalar %.3f ms, blocked %.3f ms (%.2fx), "
                "bitwise_equal=%d\n",
                conv_ms[0], conv_ms[1], conv_ms[0] / conv_ms[1], conv_eq ? 1 : 0);
    std::printf("simd best: %s at %.2fx vs scalar-dispatch blocked\n",
                best_overall.c_str(), best_overall_speedup);
    std::printf("wrote results/BENCH_kernels.json\n");
    if (!tiled_eq || !blocked_eq || !conv_eq || !simd_all_eq) {
        std::fprintf(stderr, "BENCH_kernels: bitwise equality violated\n");
        return 1;
    }
    if (rowstream_ms / blocked_ms < 1.3)
        std::fprintf(stderr,
                     "warning: blocked forward %.2fx vs rowstream (target 1.3x)\n",
                     rowstream_ms / blocked_ms);
    if (isas.size() > 1 && best_overall_speedup < 1.5)
        std::fprintf(stderr,
                     "warning: simd best %.2fx vs scalar blocked (target 1.5x)\n",
                     best_overall_speedup);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    // Flags are parsed by hand (not util::ArgParser) because unknown flags
    // must pass through to google-benchmark untouched.
    bool quick = false, tile_sweep = false, kernels_json = false, profile = false;
    std::string trace_path;
    std::vector<char*> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--tile-sweep") == 0) {
            tile_sweep = true;
        } else if (std::strcmp(argv[i], "--kernels-json") == 0) {
            kernels_json = true;
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            profile = true;
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    if (profile || !trace_path.empty()) obs::trace_start();

    int rc = 0;
    if (tile_sweep || kernels_json) {
        if (tile_sweep) rc = run_tile_sweep();
        if (rc == 0 && kernels_json) rc = run_kernels_json();
    } else {
        // Smoke mode: one tiny-budget pass over every benchmark, failing only
        // on crashes — scripts/check.sh and CI run this as a smoke stage.
        std::string min_time = "--benchmark_min_time=0.01";
        if (quick) passthrough.push_back(min_time.data());

        int pargc = static_cast<int>(passthrough.size());
        benchmark::Initialize(&pargc, passthrough.data());
        if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
            rc = 1;
        } else {
            benchmark::RunSpecifiedBenchmarks();
            benchmark::Shutdown();
        }
    }

    if (obs::trace_enabled()) {
        obs::trace_stop();
        if (profile) std::fputs(obs::profile_table().c_str(), stdout);
        if (!trace_path.empty()) {
            if (obs::write_chrome_trace(trace_path)) {
                std::printf("wrote %s (load in ui.perfetto.dev)\n",
                            trace_path.c_str());
            } else {
                std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
                rc = 1;
            }
        }
    }
    if (profile) {
        const std::string counters = obs::counters_table();
        if (!counters.empty()) std::fputs(counters.c_str(), stdout);
    }
    return rc;
}
