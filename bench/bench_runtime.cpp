/// \file bench_runtime.cpp
/// \brief Reproduces the paper's runtime-overhead observation (Sec. V-B):
///        retraining with the difference-based gradient costs extra time
///        over STE (the paper reports ~1.4x for VGG19 and ~2.6x for
///        ResNet18 on a RTX 3090, dominated by the extra gradient work in
///        backward). Here we time (a) gradient-LUT construction and (b) one
///        full retraining epoch per estimator on the CPU implementation,
///        where both estimators share the same LUT-driven backward kernel —
///        so the measured overhead isolates the table-construction cost and
///        any cache effects of the non-trivial gradient tables.
#include "bench_common.hpp"

#include <cstdio>

using namespace amret;

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    bench::SweepConfig config;
    config.model = args.get("model", "vgg19");
    config.retrain_epochs = 2;
    config.apply_args(args);

    const auto pair = config.make_data();
    train::RetrainPipeline pipeline(config.pipeline_config(), pair.train, pair.test);
    auto& reg = appmult::Registry::instance();

    util::TablePrinter table({"Multiplier", "Grad build STE/ms", "Grad build ours/ms",
                              "Epochs STE/s", "Epochs ours/s", "Overhead"});
    unsigned prepared_bits = 0;
    for (const char* name : {"mul8u_rm8", "mul7u_rm6"}) {
        const unsigned bits = reg.info(name).bits;
        if (bits != prepared_bits) {
            pipeline.prepare(bits);
            prepared_bits = bits;
        }
        const auto& lut = reg.lut(name);
        const unsigned hws = bench::bench_hws(name);

        util::Stopwatch sw;
        const auto ste_grad = core::build_ste_grad(bits);
        const double build_ste_ms = sw.millis();
        sw.restart();
        const auto our_grad = core::build_difference_grad(lut, hws);
        const double build_ours_ms = sw.millis();

        sw.restart();
        pipeline.retrain(lut, ste_grad);
        const double train_ste_s = sw.seconds();
        sw.restart();
        pipeline.retrain(lut, our_grad);
        const double train_ours_s = sw.seconds();

        table.add_row({name, util::TablePrinter::num(build_ste_ms, 2),
                       util::TablePrinter::num(build_ours_ms, 2),
                       util::TablePrinter::num(train_ste_s, 2),
                       util::TablePrinter::num(train_ours_s, 2),
                       util::TablePrinter::num(train_ours_s / train_ste_s, 2) + "x"});
    }
    std::printf("Retraining runtime: STE vs difference-based gradient (%s, %d "
                "epochs per run)\n",
                config.model.c_str(), config.retrain_epochs);
    table.print();
    std::printf("\nPaper context: 1.4x (VGG19) / 2.6x (ResNet18) on GPU, where the\n"
                "difference gradient needs extra kernels; our CPU backward uses the\n"
                "same LUT kernel for both, so the steady-state overhead is near 1.0x\n"
                "and the one-time table construction dominates the difference.\n");
    return 0;
}
