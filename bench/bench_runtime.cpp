/// \file bench_runtime.cpp
/// \brief Reproduces the paper's runtime-overhead observation (Sec. V-B):
///        retraining with the difference-based gradient costs extra time
///        over STE (the paper reports ~1.4x for VGG19 and ~2.6x for
///        ResNet18 on a RTX 3090, dominated by the extra gradient work in
///        backward). Here we time (a) gradient-LUT construction and (b) one
///        full retraining epoch per estimator on the CPU implementation,
///        where both estimators share the same LUT-driven backward kernel —
///        so the measured overhead isolates the table-construction cost and
///        any cache effects of the non-trivial gradient tables.
#include "bench_common.hpp"

#include <cstdio>
#include <filesystem>

using namespace amret;

namespace {

/// Times one kernel at the given thread count; returns ms per iteration.
template <typename Fn>
double time_kernel_ms(unsigned threads, int iters, Fn&& fn) {
    runtime::set_num_threads(threads);
    fn(); // warm up (resolves the pool, faults in buffers)
    obs::TimedSpan sw("bench.kernel");
    for (int i = 0; i < iters; ++i) fn();
    const double ms = sw.millis() / iters;
    runtime::set_num_threads(1);
    return ms;
}

/// Threads-vs-throughput sweep over the two hot kernels, one JSON row per
/// (kernel, threads) so the results are machine-readable:
///   {"bench": "lut_gemm", "threads": 4, "ms_per_iter": 1.23, "speedup": 2.5}
void threads_sweep(int iters) {
    const unsigned bits = 8;
    const std::int64_t o = 32, p = 1024, k = 72;
    const auto lut = appmult::AppMultLut::exact(bits);
    util::Rng rng(1);
    std::vector<std::uint16_t> wq(static_cast<std::size_t>(o * k));
    std::vector<std::uint16_t> xq(static_cast<std::size_t>(p * k));
    for (auto& v : wq) v = static_cast<std::uint16_t>(rng.uniform_u64(lut.domain()));
    for (auto& v : xq) v = static_cast<std::uint16_t>(rng.uniform_u64(lut.domain()));
    kernels::LutGemmArgs gemm;
    gemm.bits = bits;
    gemm.lut = lut.table().data();
    gemm.wq = wq.data();
    gemm.xq = xq.data();
    gemm.o = o;
    gemm.p = p;
    gemm.k = k;
    std::vector<float> y(static_cast<std::size_t>(p * o));
    kernels::Workspace ws;

    approx::ApproxConv2d conv(8, 32, 3, 1, 1, rng);
    conv.set_multiplier(approx::MultiplierConfig::exact_ste(8));
    conv.set_mode(approx::ComputeMode::kQuantized);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{8, 8, 32, 32}, rng);

    struct Kernel {
        const char* name;
        std::function<void()> fn;
    };
    const Kernel kernels[] = {
        {"lut_gemm",
         [&] {
             ws.reset();
             kernels::lut_forward(gemm, nullptr, y.data(), ws);
         }},
        {"approx_conv",
         [&] {
             nn::Context ctx;
             auto out = conv.forward(x, ctx);
             (void)out;
         }},
    };
    for (const auto& kernel : kernels) {
        double base_ms = 0.0;
        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
            const double ms = time_kernel_ms(threads, iters, kernel.fn);
            if (threads == 1) base_ms = ms;
            std::printf("{\"bench\": \"%s\", \"threads\": %u, "
                        "\"ms_per_iter\": %.4f, \"speedup\": %.3f}\n",
                        kernel.name, threads, ms, base_ms / ms);
        }
    }
}

/// Microbatch-count sweep: one LeNet training epoch per K at a fixed thread
/// count, so the CSV isolates how much trainer-level data parallelism buys
/// on top of (serialized-when-nested) kernel-level parallelism.
int run_microbatch_sweep(const util::ArgParser& args) {
    const auto threads = static_cast<unsigned>(args.get_int("threads", 8));
    const int epochs = static_cast<int>(args.get_int("epochs", 1));
    runtime::set_num_threads(threads);

    data::SyntheticConfig dc;
    dc.num_classes = 10;
    dc.height = dc.width = 16;
    dc.train_samples = 512;
    dc.test_samples = 64;
    dc.seed = 5;
    const auto pair = data::make_synthetic(dc);

    std::filesystem::create_directories("results");
    std::FILE* csv = std::fopen("results/trainer_scaling.csv", "w");
    if (!csv) {
        std::fprintf(stderr, "cannot open results/trainer_scaling.csv\n");
        return 1;
    }
    std::fprintf(csv, "microbatches,threads,epoch_s,speedup\n");

    double base_s = 0.0;
    for (const int k : {1, 2, 4, 8}) {
        models::ModelConfig mc;
        mc.in_size = 16;
        mc.width_mult = 0.5f;
        auto model = models::make_lenet(mc);

        train::TrainConfig tc;
        tc.epochs = epochs;
        tc.batch_size = 64;
        tc.microbatches = k;
        train::Trainer trainer(*model, pair.train, pair.test, tc);
        obs::TimedSpan sw("bench.microbatch_epoch");
        trainer.train_only(epochs);
        const double epoch_s = sw.seconds() / epochs;
        if (k == 1) base_s = epoch_s;
        std::fprintf(csv, "%d,%u,%.4f,%.3f\n", k, threads, epoch_s,
                     base_s / epoch_s);
        std::printf("{\"bench\": \"trainer\", \"microbatches\": %d, "
                    "\"threads\": %u, \"epoch_s\": %.4f, \"speedup\": %.3f}\n",
                    k, threads, epoch_s, base_s / epoch_s);
    }
    std::fclose(csv);
    std::printf("microbatch sweep written to results/trainer_scaling.csv\n");
    runtime::set_num_threads(1);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    bench::ObsSession obs_session(args);
    if (args.get_bool("microbatch-sweep", false)) return run_microbatch_sweep(args);

    std::printf("threads-vs-throughput sweep (JSON rows)\n");
    threads_sweep(static_cast<int>(args.get_int("sweep-iters", 20)));
    if (args.get_bool("sweep-only", false)) return 0;

    bench::SweepConfig config;
    config.model = args.get("model", "vgg19");
    config.retrain_epochs = 2;
    config.apply_args(args);

    const auto pair = config.make_data();
    train::RetrainPipeline pipeline(config.pipeline_config(), pair.train, pair.test);
    auto& reg = appmult::Registry::instance();

    util::TablePrinter table({"Multiplier", "Grad build STE/ms", "Grad build ours/ms",
                              "Epochs STE/s", "Epochs ours/s", "Overhead"});
    unsigned prepared_bits = 0;
    for (const char* name : {"mul8u_rm8", "mul7u_rm6"}) {
        const unsigned bits = reg.info(name).bits;
        if (bits != prepared_bits) {
            pipeline.prepare(bits);
            prepared_bits = bits;
        }
        const auto& lut = reg.lut(name);
        const unsigned hws = bench::bench_hws(name);

        obs::TimedSpan sw_ste_build("bench.grad_build.ste");
        const auto ste_grad = core::build_ste_grad(bits);
        sw_ste_build.stop();
        const double build_ste_ms = sw_ste_build.millis();
        obs::TimedSpan sw_ours_build("bench.grad_build.ours");
        const auto our_grad = core::build_difference_grad(lut, hws);
        sw_ours_build.stop();
        const double build_ours_ms = sw_ours_build.millis();

        obs::TimedSpan sw_ste("bench.retrain.ste");
        pipeline.retrain(lut, ste_grad);
        sw_ste.stop();
        const double train_ste_s = sw_ste.seconds();
        obs::TimedSpan sw_ours("bench.retrain.ours");
        pipeline.retrain(lut, our_grad);
        sw_ours.stop();
        const double train_ours_s = sw_ours.seconds();

        table.add_row({name, util::TablePrinter::num(build_ste_ms, 2),
                       util::TablePrinter::num(build_ours_ms, 2),
                       util::TablePrinter::num(train_ste_s, 2),
                       util::TablePrinter::num(train_ours_s, 2),
                       util::TablePrinter::num(train_ours_s / train_ste_s, 2) + "x"});
    }
    std::printf("Retraining runtime: STE vs difference-based gradient (%s, %d "
                "epochs per run)\n",
                config.model.c_str(), config.retrain_epochs);
    table.print();
    std::printf("\nPaper context: 1.4x (VGG19) / 2.6x (ResNet18) on GPU, where the\n"
                "difference gradient needs extra kernels; our CPU backward uses the\n"
                "same LUT kernel for both, so the steady-state overhead is near 1.0x\n"
                "and the one-time table construction dominates the difference.\n");
    return 0;
}
