/// \file bench_common.hpp
/// \brief Shared infrastructure for the paper-reproduction bench binaries.
///
/// Each bench binary regenerates one table or figure of the paper. They
/// share: the scaled-down experiment configuration (CPU-sized stand-ins for
/// CIFAR-10/100 + VGG19/ResNet), the Table II sweep runner with CSV result
/// caching (so e.g. bench_fig5 and bench_table2_resnet don't both pay for
/// the same retraining sweep), and the per-multiplier half-window sizes
/// selected for this scale by the Sec. V-A procedure (see
/// bench_hws_ablation for the selection sweep itself).
#pragma once

#include "amret.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace amret::bench {

/// One experiment configuration for a Table II style sweep.
struct SweepConfig {
    std::string model = "vgg19";
    int classes = 10;
    std::int64_t image = 8;
    float width_mult = 0.125f;
    std::int64_t train_samples = 600;
    std::int64_t test_samples = 500;
    float noise = 0.5f;
    int max_shift = 2;
    int float_epochs = 5;
    int qat_epochs = 3;
    int retrain_epochs = 3;
    std::int64_t batch = 32;
    double lr = 1e-3;
    std::uint64_t data_seed = 42;
    int seeds = 2;      ///< independent repetitions averaged per row
    double scale = 1.0; ///< multiplies samples and retrain epochs

    /// Applies --scale / AMRET_SCALE and related CLI overrides.
    void apply_args(const util::ArgParser& args);

    /// Stable string identity used to validate cached results.
    [[nodiscard]] std::string key() const;

    [[nodiscard]] data::DatasetPair make_data() const;
    [[nodiscard]] train::PipelineConfig pipeline_config() const;
};

/// One multiplier row of a Table II style sweep.
struct SweepRow {
    std::string mult;
    unsigned bits = 0;
    double reference = 0.0; ///< QAT accuracy with the AccMult of this width
    double initial = 0.0;   ///< after the AppMult swap, before retraining
    double ste = 0.0;       ///< after retraining with the STE gradient
    double ours = 0.0;      ///< after retraining with the difference gradient
    unsigned hws = 0;       ///< half window size used for `ours`
};

/// Per-multiplier half window sizes selected at bench scale using the
/// paper's Sec. V-A procedure (short-training sweep, smallest loss). The
/// paper's own Table I values target RTX-3090-scale runs; these are the
/// equivalents for the slim CPU configuration. Names missing here fall back
/// to the registry default.
unsigned bench_hws(const std::string& mult_name);

/// The paper's Table II multiplier lineup (8-bit then 7-bit AppMults).
const std::vector<std::string>& table2_multipliers();

/// Runs the full STE-vs-Ours sweep for \p multipliers, reusing a cached CSV
/// in `results/` when its config key matches (delete `results/` to force a
/// rerun). Rows come back in input order.
std::vector<SweepRow> run_or_load_sweep(const SweepConfig& config,
                                        const std::vector<std::string>& multipliers,
                                        const std::string& cache_name);

/// Renders sweep rows in the paper's Table II format (plus hardware columns
/// normalized to mul8u_acc).
void print_table2(const std::vector<SweepRow>& rows, const std::string& title);

/// results/ directory (created on demand).
std::string results_dir();

/// Observability bracket for a bench main(): starts tracing when the run
/// asks for it (`--trace f.json`, `--profile`, or AMRET_PROFILE=1) and, on
/// destruction, prints the hierarchical profile + counter tables and writes
/// the Perfetto-loadable trace file. Construct one right after the
/// ArgParser; a run without those flags costs nothing.
class ObsSession {
public:
    explicit ObsSession(const util::ArgParser& args);
    ~ObsSession();
    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

private:
    std::string trace_path_;
    bool profile_ = false;
};

} // namespace amret::bench
