/// \file bench_fig5.cpp
/// \brief Regenerates Fig. 5: ResNet18 accuracy after retraining versus
///        normalized multiplier power, for 7-bit (a) and 8-bit (b) AppMults,
///        STE vs Ours, with the AccMult reference accuracy line.
///
/// Runs (or reuses) the same sweep as bench_table2_resnet and prints the
/// scatter series; CSV saved for plotting.
#include "bench_common.hpp"

#include <cstdio>

using namespace amret;

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    bench::SweepConfig config;
    config.model = "resnet18";
    config.apply_args(args);

    const auto rows =
        bench::run_or_load_sweep(config, bench::table2_multipliers(), "table2_resnet");

    auto& reg = appmult::Registry::instance();
    const double base_power = reg.hardware("mul8u_acc").power_uw;

    util::CsvWriter csv({"panel", "multiplier", "norm_power", "ste_acc", "ours_acc",
                         "reference_acc"});
    for (unsigned bits : {7u, 8u}) {
        const std::string acc_name = "mul" + std::to_string(bits) + "u_acc";
        const double acc_power = reg.hardware(acc_name).power_uw / base_power;

        std::printf("\nFig. 5(%c): %u-bit AppMults — accuracy vs normalized power "
                    "(norm. power of %s = %.2f)\n",
                    bits == 7 ? 'a' : 'b', bits, acc_name.c_str(), acc_power);

        util::TablePrinter table(
            {"Multiplier", "Norm.power", "STE acc/%", "Ours acc/%", "Ref acc/%"});
        for (const auto& row : rows) {
            if (row.bits != bits) continue;
            const double power = reg.hardware(row.mult).power_uw / base_power;
            table.add_row({row.mult, util::TablePrinter::num(power, 2),
                           util::TablePrinter::num(100.0 * row.ste, 2),
                           util::TablePrinter::num(100.0 * row.ours, 2),
                           util::TablePrinter::num(100.0 * row.reference, 2)});
            csv.add_row({std::string(bits == 7 ? "a" : "b"), row.mult,
                         std::to_string(power), std::to_string(row.ste),
                         std::to_string(row.ours), std::to_string(row.reference)});
        }
        table.print();
    }
    const std::string path = bench::results_dir() + "/fig5.csv";
    csv.save(path);
    std::printf("\nscatter series saved to %s\n", path.c_str());
    return 0;
}
