/// \file bench_fig6.cpp
/// \brief Regenerates Fig. 6: top-5 test accuracy versus retraining epoch
///        for ResNet34 (a) and ResNet50 (b) with the 6-bit AppMult
///        mul6u_rm4, STE vs the difference-based gradient.
///
/// Scaled substitution: slim ResNets on a CIFAR-100-like synthetic task
/// (many classes so top-5 is meaningful); epoch count scaled by --scale.
#include "bench_common.hpp"

#include <cstdio>

using namespace amret;

namespace {

struct CurvePair {
    std::vector<double> ste;
    std::vector<double> ours;
    double initial_top5 = 0.0;
};

CurvePair run_model(const std::string& model, const bench::SweepConfig& base) {
    bench::SweepConfig config = base;
    config.model = model;

    const auto pair = config.make_data();
    train::RetrainPipeline pipeline(config.pipeline_config(), pair.train, pair.test);
    pipeline.prepare(6);

    auto& reg = appmult::Registry::instance();
    const auto& lut = reg.lut("mul6u_rm4");

    CurvePair curves;
    const auto ste = pipeline.retrain(lut, core::build_ste_grad(6));
    const auto ours = pipeline.retrain(
        lut, core::build_difference_grad(lut, bench::bench_hws("mul6u_rm4")));
    curves.initial_top5 = ste.initial_top5;
    for (const auto& epoch : ste.history.test) curves.ste.push_back(epoch.top5);
    for (const auto& epoch : ours.history.test) curves.ours.push_back(epoch.top5);
    return curves;
}

} // namespace

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    bench::SweepConfig config;
    // CIFAR-100-like: many classes, a bit more data so top-5 separates.
    config.classes = 40;
    config.train_samples = 800;
    config.test_samples = 400;
    config.retrain_epochs = 8;
    config.apply_args(args);

    util::CsvWriter csv({"model", "epoch", "ste_top5", "ours_top5"});
    for (const std::string model : {"resnet34", "resnet50"}) {
        util::log_info("running ", model, " (mul6u_rm4, CIFAR-100-like) ...");
        const auto curves = run_model(model, config);

        std::printf("\nFig. 6(%s): %s, top-5 accuracy vs epoch, mul6u_rm4\n",
                    model == "resnet34" ? "a" : "b", model.c_str());
        std::printf("initial (before retraining): %.2f%%\n",
                    100.0 * curves.initial_top5);
        util::TablePrinter table({"Epoch", "STE top-5/%", "Ours top-5/%"});
        for (std::size_t e = 0; e < curves.ste.size(); ++e) {
            table.add_row({std::to_string(e + 1),
                           util::TablePrinter::num(100.0 * curves.ste[e], 2),
                           util::TablePrinter::num(100.0 * curves.ours[e], 2)});
            csv.add_row({model, std::to_string(e + 1), std::to_string(curves.ste[e]),
                         std::to_string(curves.ours[e])});
        }
        table.print();
        std::printf("final: STE %.2f%%  Ours %.2f%%\n",
                    100.0 * curves.ste.back(), 100.0 * curves.ours.back());
    }
    const std::string path = bench::results_dir() + "/fig6.csv";
    csv.save(path);
    std::printf("\ncurves saved to %s\n", path.c_str());
    return 0;
}
