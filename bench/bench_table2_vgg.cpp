/// \file bench_table2_vgg.cpp
/// \brief Regenerates Table II (top): VGG19 on the CIFAR-10-like task,
///        comparing STE-based retraining against the difference-based
///        gradient for every 7- and 8-bit AppMult of Table I.
///
/// Scaled substitution: slim VGG19 (width 1/8) on 8x8 synthetic 10-class
/// images, few epochs — see DESIGN.md section 2. Use --scale / AMRET_SCALE
/// to grow the run; results cache in results/table2_vgg.csv.
#include "bench_common.hpp"

using namespace amret;

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    bench::SweepConfig config;
    config.model = "vgg19";
    config.apply_args(args);

    const auto rows =
        bench::run_or_load_sweep(config, bench::table2_multipliers(), "table2_vgg");
    bench::print_table2(rows,
                        "Table II (top): VGG19, STE vs difference-based gradient "
                        "(CIFAR-10-like synthetic task, slim model)");
    return 0;
}
