#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace amret::bench {

void SweepConfig::apply_args(const util::ArgParser& args) {
    scale = args.get_double("scale", scale, "AMRET_SCALE");
    model = args.get("model", model);
    retrain_epochs = static_cast<int>(args.get_int("epochs", retrain_epochs));
    train_samples = args.get_int("train", train_samples);
    test_samples = args.get_int("test", test_samples);
    lr = args.get_double("lr", lr);
    seeds = static_cast<int>(args.get_int("seeds", seeds, "AMRET_SEEDS"));
    if (args.get_bool("quick", false, "AMRET_QUICK")) {
        scale = 0.5;
        seeds = 1;
    }
    train_samples = static_cast<std::int64_t>(static_cast<double>(train_samples) * scale);
    test_samples = static_cast<std::int64_t>(static_cast<double>(test_samples) * scale);
    retrain_epochs = std::max(1, static_cast<int>(std::lround(retrain_epochs * scale)));
    seeds = std::max(1, seeds);
}

std::string SweepConfig::key() const {
    std::ostringstream os;
    os << model << "|c" << classes << "|i" << image << "|w" << width_mult << "|tr"
       << train_samples << "|te" << test_samples << "|n" << noise << "|s" << max_shift
       << "|f" << float_epochs << "|q" << qat_epochs << "|r" << retrain_epochs << "|b"
       << batch << "|lr" << lr << "|seed" << data_seed << "|reps" << seeds;
    // Fingerprint the HWS selection so cached sweeps invalidate when the
    // selected windows change.
    os << "|hws";
    for (const auto& name : table2_multipliers()) os << "." << bench_hws(name);
    return os.str();
}

data::DatasetPair SweepConfig::make_data() const {
    data::SyntheticConfig dc;
    dc.num_classes = classes;
    dc.height = dc.width = image;
    dc.train_samples = train_samples;
    dc.test_samples = test_samples;
    dc.noise_stddev = noise;
    dc.max_shift = max_shift;
    dc.seed = data_seed;
    return data::make_synthetic(dc);
}

train::PipelineConfig SweepConfig::pipeline_config() const {
    train::PipelineConfig pc;
    pc.model = model;
    pc.model_config.in_size = image;
    pc.model_config.num_classes = classes;
    pc.model_config.width_mult = width_mult;
    pc.float_epochs = float_epochs;
    pc.qat_epochs = qat_epochs;
    pc.retrain_epochs = retrain_epochs;
    pc.train.batch_size = batch;
    pc.train.lr = lr;
    return pc;
}

unsigned bench_hws(const std::string& mult_name) {
    // Selected by the paper's Sec. V-A procedure at bench scale: for each
    // candidate HWS in {1,2,4,8,16,32,64}, train a small LeNet for a few
    // epochs with the difference-based gradient and keep the smallest
    // training loss (see bench_hws_ablation, which re-runs the sweep).
    // Values differ from the paper's Table I because the training regime
    // differs; the selection *procedure* is the reproduced artifact.
    static const std::map<std::string, unsigned> kSelected = {
        {"mul8u_syn1", 32}, {"mul8u_syn2", 16}, {"mul8u_2NDH", 32},
        {"mul8u_17C8", 64}, {"mul8u_1DMU", 8},  {"mul8u_17R6", 32},
        {"mul8u_rm8", 8},   {"mul7u_06Q", 4},   {"mul7u_073", 4},
        {"mul7u_rm6", 4},   {"mul7u_syn1", 16}, {"mul7u_syn2", 64},
        {"mul7u_081", 1},   {"mul7u_08E", 32},  {"mul6u_rm4", 4},
    };
    const auto it = kSelected.find(mult_name);
    if (it != kSelected.end()) return it->second;
    const auto& reg = appmult::Registry::instance();
    return reg.contains(mult_name) ? std::max(1u, reg.info(mult_name).default_hws) : 4u;
}

const std::vector<std::string>& table2_multipliers() {
    static const std::vector<std::string> kList = {
        "mul8u_syn1", "mul8u_syn2", "mul8u_2NDH", "mul8u_17C8", "mul8u_1DMU",
        "mul8u_17R6", "mul8u_rm8",  "mul7u_06Q",  "mul7u_073",  "mul7u_rm6",
        "mul7u_syn1", "mul7u_syn2", "mul7u_081",  "mul7u_08E"};
    return kList;
}

std::string results_dir() {
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    return "results";
}

ObsSession::ObsSession(const util::ArgParser& args)
    : trace_path_(args.get("trace", "")),
      profile_(args.get_bool("profile", false, "AMRET_PROFILE")) {
    if (!trace_path_.empty() || profile_) obs::trace_start();
}

ObsSession::~ObsSession() {
    if (obs::trace_enabled()) {
        obs::trace_stop();
        if (profile_) std::fputs(obs::profile_table().c_str(), stdout);
        if (!trace_path_.empty()) {
            if (obs::write_chrome_trace(trace_path_))
                std::printf("wrote %s (load in ui.perfetto.dev)\n",
                            trace_path_.c_str());
            else
                std::fprintf(stderr, "cannot write %s\n", trace_path_.c_str());
        }
    }
    if (profile_) {
        const std::string counters = obs::counters_table();
        if (!counters.empty()) std::fputs(counters.c_str(), stdout);
    }
}

namespace {

std::optional<std::vector<SweepRow>> load_cached(const std::string& path,
                                                 const std::string& key,
                                                 std::size_t expected_rows) {
    std::ifstream f(path);
    if (!f) return std::nullopt;
    std::string line;
    if (!std::getline(f, line) || line != "# " + key) return std::nullopt;
    if (!std::getline(f, line)) return std::nullopt; // header
    std::vector<SweepRow> rows;
    while (std::getline(f, line)) {
        std::istringstream is(line);
        SweepRow row;
        std::string bits, ref, init, ste, ours, hws;
        if (!std::getline(is, row.mult, ',') || !std::getline(is, bits, ',') ||
            !std::getline(is, ref, ',') || !std::getline(is, init, ',') ||
            !std::getline(is, ste, ',') || !std::getline(is, ours, ',') ||
            !std::getline(is, hws, ','))
            return std::nullopt;
        row.bits = static_cast<unsigned>(std::stoul(bits));
        row.reference = std::stod(ref);
        row.initial = std::stod(init);
        row.ste = std::stod(ste);
        row.ours = std::stod(ours);
        row.hws = static_cast<unsigned>(std::stoul(hws));
        rows.push_back(std::move(row));
    }
    if (rows.size() != expected_rows) return std::nullopt;
    return rows;
}

void save_cache(const std::string& path, const std::string& key,
                const std::vector<SweepRow>& rows) {
    std::ofstream f(path);
    if (!f) return;
    f << "# " << key << "\n";
    f << "mult,bits,reference,initial,ste,ours,hws\n";
    for (const auto& r : rows) {
        f << r.mult << ',' << r.bits << ',' << r.reference << ',' << r.initial << ','
          << r.ste << ',' << r.ours << ',' << r.hws << "\n";
    }
}

} // namespace

std::vector<SweepRow> run_or_load_sweep(const SweepConfig& config,
                                        const std::vector<std::string>& multipliers,
                                        const std::string& cache_name) {
    const std::string path = results_dir() + "/" + cache_name + ".csv";
    if (auto cached = load_cached(path, config.key(), multipliers.size())) {
        util::log_info("loaded cached sweep from ", path);
        return *cached;
    }

    auto& reg = appmult::Registry::instance();
    std::vector<SweepRow> rows(multipliers.size());
    obs::TimedSpan total("bench.sweep");

    // Average the whole sweep over independent repetitions: each repetition
    // regenerates the dataset and the model initialization with shifted
    // seeds, which tames the variance of the slim CPU-scale configuration.
    for (int rep = 0; rep < config.seeds; ++rep) {
        SweepConfig rep_config = config;
        rep_config.data_seed = config.data_seed + static_cast<std::uint64_t>(rep);
        const auto pair = rep_config.make_data();
        train::PipelineConfig pc = rep_config.pipeline_config();
        pc.model_config.seed = 1 + static_cast<std::uint64_t>(rep);
        pc.train.seed = 7 + static_cast<std::uint64_t>(rep);
        train::RetrainPipeline pipeline(pc, pair.train, pair.test);

        std::map<unsigned, double> references;
        for (std::size_t i = 0; i < multipliers.size(); ++i) {
            const std::string& name = multipliers[i];
            const unsigned bits = reg.info(name).bits;
            if (!references.count(bits)) {
                util::log_info("rep ", rep + 1, "/", config.seeds, ": preparing ",
                               config.model, " at ", bits, " bits ...");
                references[bits] = pipeline.prepare(bits);
            }
            const auto& lut = reg.lut(name);
            SweepRow& row = rows[i];
            row.mult = name;
            row.bits = bits;
            row.hws = bench_hws(name);

            obs::TimedSpan sw("bench.sweep.mult");
            const auto ste = pipeline.retrain(lut, core::build_ste_grad(bits));
            const auto ours =
                pipeline.retrain(lut, core::build_difference_grad(lut, row.hws));
            const double inv = 1.0 / static_cast<double>(config.seeds);
            row.reference += references[bits] * inv;
            row.initial += ste.initial_top1 * inv;
            row.ste += ste.final_top1 * inv;
            row.ours += ours.final_top1 * inv;
            util::log_info("  ", name, ": init ", ste.initial_top1, " ste ",
                           ste.final_top1, " ours ", ours.final_top1, " (",
                           sw.seconds(), " s)");
        }
    }
    util::log_info("sweep finished in ", total.seconds(), " s");
    save_cache(path, config.key(), rows);
    return rows;
}

void print_table2(const std::vector<SweepRow>& rows, const std::string& title) {
    auto& reg = appmult::Registry::instance();
    const double base_power = reg.hardware("mul8u_acc").power_uw;
    const double base_delay = reg.hardware("mul8u_acc").delay_ps;

    std::printf("%s\n", title.c_str());
    util::TablePrinter table({"Multiplier", "Init/%", "STE/%", "Ours/%", "Improve/%",
                              "Norm.power", "Norm.delay", "NMED/%"});

    unsigned current_bits = 0;
    double sum_init = 0.0, sum_ste = 0.0, sum_ours = 0.0;
    for (const auto& row : rows) {
        if (row.bits != current_bits) {
            current_bits = row.bits;
            const std::string acc = "mul" + std::to_string(current_bits) + "u_acc";
            table.add_separator();
            table.add_row({acc + " (reference " +
                               util::TablePrinter::num(100.0 * row.reference, 2) + "%)",
                           "-", "-", "-", "-",
                           util::TablePrinter::num(reg.hardware(acc).power_uw / base_power, 2),
                           util::TablePrinter::num(reg.hardware(acc).delay_ps / base_delay, 2),
                           "0.00"});
        }
        const auto& hw = reg.hardware(row.mult);
        const auto& err = reg.error(row.mult);
        table.add_row({row.mult, util::TablePrinter::num(100.0 * row.initial, 2),
                       util::TablePrinter::num(100.0 * row.ste, 2),
                       util::TablePrinter::num(100.0 * row.ours, 2),
                       util::TablePrinter::num(100.0 * (row.ours - row.ste), 2),
                       util::TablePrinter::num(hw.power_uw / base_power, 2),
                       util::TablePrinter::num(hw.delay_ps / base_delay, 2),
                       util::TablePrinter::num(100.0 * err.nmed, 2)});
        sum_init += row.initial;
        sum_ste += row.ste;
        sum_ours += row.ours;
    }
    const auto n = static_cast<double>(rows.size());
    table.add_separator();
    table.add_row({"mean over AppMults", util::TablePrinter::num(100.0 * sum_init / n, 2),
                   util::TablePrinter::num(100.0 * sum_ste / n, 2),
                   util::TablePrinter::num(100.0 * sum_ours / n, 2),
                   util::TablePrinter::num(100.0 * (sum_ours - sum_ste) / n, 2), "-", "-",
                   "-"});
    table.print();
}

} // namespace amret::bench
