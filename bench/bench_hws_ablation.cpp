/// \file bench_hws_ablation.cpp
/// \brief Reproduces the Sec. V-A half-window-size selection procedure:
///        for each candidate HWS in {1, 2, 4, 8, 16, 32, 64}, retrain a
///        small LeNet for a few epochs with the difference-based gradient
///        and report the training loss; the selected HWS is the argmin.
///        Also reports the resulting test accuracy per HWS to show the
///        selection's effect.
#include "bench_common.hpp"

#include <cstdio>

using namespace amret;

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    const double scale = args.get_double("scale", 1.0, "AMRET_SCALE");

    data::SyntheticConfig dc;
    dc.num_classes = 10;
    dc.height = dc.width = 8;
    dc.train_samples = static_cast<std::int64_t>(400 * scale);
    dc.test_samples = static_cast<std::int64_t>(200 * scale);
    dc.noise_stddev = 0.5f;
    const auto pair = data::make_synthetic(dc);

    train::HwsSearchConfig config;
    config.epochs = std::max(1, static_cast<int>(3 * scale));
    config.lenet.in_size = 8;
    config.lenet.num_classes = 10;
    config.lenet.width_mult = 0.5f;
    config.train.batch_size = 32;
    config.train.lr = 1e-3;

    auto& reg = appmult::Registry::instance();
    const std::vector<std::string> mults = {"mul8u_rm8", "mul8u_1DMU", "mul7u_rm6",
                                            "mul6u_rm4"};

    util::CsvWriter csv({"multiplier", "hws", "train_loss", "selected"});
    for (const auto& name : mults) {
        util::log_info("HWS sweep for ", name, " ...");
        const auto& lut = reg.lut(name);
        const auto sel = train::search_hws(lut, pair.train, config);

        std::printf("\nHWS selection for %s (LeNet, %d epochs; smallest training "
                    "loss wins)\n",
                    name.c_str(), config.epochs);
        util::TablePrinter table({"HWS", "Train loss", "Selected"});
        for (const auto& [hws, loss] : sel.losses) {
            const bool chosen = hws == sel.best_hws;
            table.add_row({std::to_string(hws), util::TablePrinter::num(loss, 4),
                           chosen ? "<==" : ""});
            csv.add_row({name, std::to_string(hws), std::to_string(loss),
                         chosen ? "1" : "0"});
        }
        table.print();
        std::printf("selected HWS = %u (bench table uses %u)\n", sel.best_hws,
                    bench::bench_hws(name));
    }
    csv.save(bench::results_dir() + "/hws_ablation.csv");
    std::printf("\nsweep saved to %s/hws_ablation.csv\n", bench::results_dir().c_str());
    return 0;
}
