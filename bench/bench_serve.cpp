/// \file bench_serve.cpp
/// \brief Closed-loop serving benchmark: coalesced vs unbatched.
///
/// Drives the batching inference server with the same client population and
/// model mix twice — once with micro-batch coalescing enabled (max_batch N,
/// deadline D) and once degraded to max_batch = 1 — and compares tail
/// latency and throughput at that fixed offered load. The model registry is
/// shared and pre-warmed across the two passes, so neither pays lazy-load
/// cost and the comparison isolates the coalescer.
///
/// Outputs:
///   results/serve_latency.csv   latency CDF per mode (mode, pct, us) plus
///                               a summary row per mode
///   BENCH_serve.json            machine-readable summary at the repo root
///                               (per-mode qps/p50/p95/p99/reject rate/mean
///                               batch and the coalescing speedup ratios)
///
/// Flags: --quick (CI-sized run), --duration S, --clients N, --workers N,
/// --max-batch N, --deadline-us U, --queue-depth N, --rate R (per-client
/// req/s, 0 = closed-loop max), --bursty, --train-epochs N, plus the common
/// --trace/--profile observability flags.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace amret;

namespace {

struct ModeResult {
    std::string name;
    serve::LoadGenReport report;
    serve::ServerStats stats;
};

ModeResult run_mode(const std::string& name, serve::ModelRegistry& registry,
                    const serve::ServeConfig& sc,
                    const std::vector<serve::ModelSpec>& hot,
                    const std::vector<serve::ModelSpec>& cold,
                    const std::vector<tensor::Tensor>& samples,
                    const serve::LoadGenConfig& lc) {
    serve::InferenceServer server(registry, sc);
    ModeResult mode;
    mode.name = name;
    mode.report = serve::run_loadgen(server, hot, cold, samples, lc);
    server.stop(true);
    mode.stats = server.stats();
    return mode;
}

void print_mode(const ModeResult& m) {
    std::printf("%-10s %8.0f qps  p50 %7.0f  p95 %7.0f  p99 %7.0f us  "
                "mean batch %.2f  reject %.1f%%\n",
                m.name.c_str(), m.report.qps, m.report.p50_us, m.report.p95_us,
                m.report.p99_us, m.stats.mean_batch(),
                100.0 * m.report.reject_rate);
}

void append_json_mode(std::FILE* f, const ModeResult& m, bool last) {
    std::fprintf(f,
                 "  \"%s\": {\"qps\": %.1f, \"p50_us\": %.0f, \"p95_us\": "
                 "%.0f, \"p99_us\": %.0f, \"mean_us\": %.0f, \"reject_rate\": "
                 "%.4f, \"mean_batch\": %.2f, \"total\": %lld, \"ok\": "
                 "%lld}%s\n",
                 m.name.c_str(), m.report.qps, m.report.p50_us, m.report.p95_us,
                 m.report.p99_us, m.report.mean_us, m.report.reject_rate,
                 m.stats.mean_batch(), static_cast<long long>(m.report.total),
                 static_cast<long long>(m.report.ok), last ? "" : ",");
}

} // namespace

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    const bench::ObsSession obs_session(args);
    const bool quick = args.get_bool("quick", false);
    const double duration_s = args.get_double("duration", quick ? 1.5 : 4.0);
    const int train_epochs =
        static_cast<int>(args.get_int("train-epochs", quick ? 1 : 3));
    const long threads = args.get_int("threads", 0, "AMRET_THREADS");
    if (threads > 0) runtime::set_num_threads(static_cast<unsigned>(threads));

    // --- one tiny trained snapshot shared by every served variant ---------
    data::SyntheticConfig dc;
    dc.num_classes = 6;
    dc.height = dc.width = 8;
    dc.train_samples = 240;
    dc.test_samples = 120;
    dc.noise_stddev = 0.3f;
    dc.seed = 77;
    const auto pair = data::make_synthetic(dc);

    models::ModelConfig mc;
    mc.in_size = 8;
    mc.num_classes = 6;
    mc.width_mult = 0.5f;

    auto& mult_reg = appmult::Registry::instance();
    const std::vector<std::string> mult_names{"mul8u_acc", "mul7u_rm6"};

    std::printf("bench_serve: training snapshot (lenet, %d epochs) ...\n",
                train_epochs);
    auto model = train::make_model("lenet", mc);
    {
        approx::MultiplierConfig config;
        config.lut = std::make_shared<appmult::AppMultLut>(
            mult_reg.lut(mult_names[0]));
        config.grad = std::make_shared<core::GradLut>(
            core::build_ste_grad(mult_reg.info(mult_names[0]).bits));
        approx::configure_approx_layers(*model, config,
                                        approx::ComputeMode::kQuantized);
    }
    train::TrainConfig tc;
    tc.epochs = train_epochs;
    tc.batch_size = 24;
    tc.lr = 3e-3;
    train::Trainer trainer(*model, pair.train, pair.test, tc);
    trainer.train_only(train_epochs);
    const auto snap = train::snapshot(*model);

    serve::ModelRegistry registry(
        [&](const serve::ModelSpec& spec) {
            auto m = train::make_model(spec.model, mc);
            approx::MultiplierConfig config;
            config.lut = std::make_shared<appmult::AppMultLut>(
                mult_reg.lut(spec.multiplier));
            config.grad = std::make_shared<core::GradLut>(
                core::build_ste_grad(mult_reg.info(spec.multiplier).bits));
            approx::configure_approx_layers(*m, config,
                                            approx::ComputeMode::kQuantized);
            train::restore(*m, snap);
            m->set_training(false);
            return std::make_shared<approx::IntInferenceEngine>(*m, pair.train,
                                                                64);
        },
        4);

    std::vector<serve::ModelSpec> hot{{"lenet", mult_names[0], "v0"}};
    std::vector<serve::ModelSpec> cold{{"lenet", mult_names[1], "v0"}};
    for (const auto& spec : hot) registry.acquire(spec); // pre-warm both
    for (const auto& spec : cold) registry.acquire(spec);

    std::vector<tensor::Tensor> samples;
    const std::int64_t sample_numel = pair.test.sample_numel();
    for (std::int64_t i = 0; i < std::min<std::int64_t>(16, pair.test.size());
         ++i) {
        tensor::Tensor t(tensor::Shape{1, pair.test.channels, pair.test.height,
                                       pair.test.width});
        std::copy_n(pair.test.images.data() + i * sample_numel, sample_numel,
                    t.data());
        samples.push_back(std::move(t));
    }

    serve::ServeConfig sc;
    sc.workers = static_cast<std::size_t>(args.get_int("workers", 2));
    sc.queue_depth = static_cast<std::size_t>(args.get_int("queue-depth", 512));
    sc.max_batch = args.get_int("max-batch", 16);
    sc.deadline_us = args.get_int("deadline-us", 1000);
    sc.model_concurrency = args.get_int("model-concurrency", 2);

    serve::LoadGenConfig lc;
    lc.clients = static_cast<std::size_t>(args.get_int("clients", 24));
    lc.duration_ms = static_cast<std::int64_t>(duration_s * 1000.0);
    lc.rate_per_client = args.get_double("rate", 0.0);
    lc.bursty = args.get_bool("bursty", false);
    lc.hot_fraction = args.get_double("hot-fraction", 0.9);

    std::printf("offered load: %zu closed-loop clients, %.1f s per pass, "
                "hot fraction %.2f\n",
                lc.clients, duration_s, lc.hot_fraction);

    // --- pass 1: coalesced; pass 2: same load, max_batch = 1 --------------
    const ModeResult coalesced =
        run_mode("coalesced", registry, sc, hot, cold, samples, lc);
    serve::ServeConfig sc1 = sc;
    sc1.max_batch = 1;
    sc1.deadline_us = 0;
    const ModeResult unbatched =
        run_mode("unbatched", registry, sc1, hot, cold, samples, lc);

    print_mode(coalesced);
    print_mode(unbatched);

    const double p99_speedup =
        coalesced.report.p99_us > 0.0
            ? unbatched.report.p99_us / coalesced.report.p99_us
            : 0.0;
    const double qps_speedup = unbatched.report.qps > 0.0
                                   ? coalesced.report.qps / unbatched.report.qps
                                   : 0.0;
    std::printf("coalescing speedup: p99 %.2fx, qps %.2fx\n", p99_speedup,
                qps_speedup);

    // --- results/serve_latency.csv: summary + latency CDF per mode --------
    const std::string csv_path = bench::results_dir() + "/serve_latency.csv";
    {
        std::ofstream csv(csv_path);
        csv << "mode,pct,latency_us\n";
        for (const ModeResult* m : {&coalesced, &unbatched}) {
            const auto& lat = m->report.latencies_us;
            if (lat.empty()) continue;
            for (int pct = 1; pct <= 100; ++pct) {
                std::size_t idx =
                    static_cast<std::size_t>(pct) * lat.size() / 100;
                idx = std::min(idx == 0 ? 0 : idx - 1, lat.size() - 1);
                csv << m->name << ',' << pct << ',' << lat[idx] << '\n';
            }
        }
    }
    std::printf("wrote %s\n", csv_path.c_str());

    // --- BENCH_serve.json at the repo root --------------------------------
    const char* json_path = "BENCH_serve.json";
    if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(f, "{\n");
        std::fprintf(f,
                     "  \"bench\": \"serve\", \"quick\": %s, \"clients\": %zu, "
                     "\"duration_s\": %.1f, \"max_batch\": %lld, "
                     "\"deadline_us\": %lld, \"workers\": %zu,\n",
                     quick ? "true" : "false", lc.clients, duration_s,
                     static_cast<long long>(sc.max_batch),
                     static_cast<long long>(sc.deadline_us), sc.workers);
        append_json_mode(f, coalesced, false);
        append_json_mode(f, unbatched, false);
        std::fprintf(f,
                     "  \"p99_speedup\": %.3f, \"qps_speedup\": %.3f, "
                     "\"coalescing_wins\": %s\n}\n",
                     p99_speedup, qps_speedup,
                     p99_speedup > 1.0 && qps_speedup > 1.0 ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", json_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }

    if (coalesced.report.ok == 0 || unbatched.report.ok == 0) {
        std::fprintf(stderr, "bench_serve: a pass served zero requests\n");
        return 1;
    }
    return 0;
}
