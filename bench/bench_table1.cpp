/// \file bench_table1.cpp
/// \brief Regenerates Table I: characteristics of all tested multipliers —
///        area, delay, power (netlist STA + activity power model standing in
///        for Synopsys DC + ASAP7), the ER/NMED/MaxED error metrics of
///        Eq. (2) by exhaustive enumeration, and the selected HWS.
///
/// Flags: --hws-search runs the actual Sec. V-A LeNet sweep per AppMult
/// (slower) instead of reporting the precomputed bench-scale selection.
#include "bench_common.hpp"

#include <cstdio>

using namespace amret;

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    const bool do_search = args.get_bool("hws-search", false);

    auto& reg = appmult::Registry::instance();
    util::TablePrinter table({"Multiplier", "Area/um2", "Delay/ps", "Power/uW",
                              "ER/%", "NMED/%", "MaxED", "HWS", "Construction"});
    util::CsvWriter csv({"multiplier", "area_um2", "delay_ps", "power_uw", "er",
                         "nmed", "max_ed", "hws"});

    // Optional: reproduce the HWS selection procedure live.
    data::DatasetPair hws_data;
    train::HwsSearchConfig hws_config;
    if (do_search) {
        data::SyntheticConfig dc;
        dc.num_classes = 10;
        dc.height = dc.width = 8;
        dc.train_samples = 200;
        dc.test_samples = 50;
        hws_data = data::make_synthetic(dc);
        hws_config.epochs = 2;
        hws_config.lenet.in_size = 8;
        hws_config.lenet.num_classes = 10;
        hws_config.lenet.width_mult = 0.5f;
        hws_config.train.batch_size = 32;
        hws_config.train.lr = 1e-3;
    }

    unsigned previous_bits = 0;
    for (const auto& name : reg.names()) {
        const auto& info = reg.info(name);
        if (info.bits != previous_bits) {
            table.add_separator();
            previous_bits = info.bits;
        }
        const auto& hw = reg.hardware(name);
        const auto& err = reg.error(name);

        std::string hws = "N/A";
        if (info.approximate) {
            if (do_search) {
                const auto sel =
                    train::search_hws(reg.lut(name), hws_data.train, hws_config);
                hws = std::to_string(sel.best_hws);
            } else {
                hws = std::to_string(bench::bench_hws(name));
            }
        }
        table.add_row({name, util::TablePrinter::num(hw.area_um2, 1),
                       util::TablePrinter::num(hw.delay_ps, 1),
                       util::TablePrinter::num(hw.power_uw, 2),
                       util::TablePrinter::num(100.0 * err.error_rate, 1),
                       util::TablePrinter::num(100.0 * err.nmed, 2),
                       std::to_string(err.max_ed), hws, info.family});
        csv.add_row({name, std::to_string(hw.area_um2), std::to_string(hw.delay_ps),
                     std::to_string(hw.power_uw), std::to_string(err.error_rate),
                     std::to_string(err.nmed), std::to_string(err.max_ed), hws});
    }

    std::printf("Table I: characteristics of tested unsigned multipliers\n");
    std::printf("(area/delay/power: calibrated gate-level model standing in for "
                "DC+ASAP7; errors: exhaustive enumeration, Eq. 2)\n");
    table.print();
    csv.save(bench::results_dir() + "/table1.csv");
    std::printf("\nrows saved to %s/table1.csv\n", bench::results_dir().c_str());
    return 0;
}
