/// \file bench_grad_ablation.cpp
/// \brief Ablation over the pieces of the proposed gradient (DESIGN.md):
///        - STE (baseline, Eq. 3)
///        - raw finite difference of the un-smoothed AppMult (no Eq. 4) —
///          exhibits the zero/spike pathology Fig. 3 motivates smoothing by
///        - the full method (smoothing + Eq. 5 + Eq. 6 boundary rule)
///        on one large-error multiplier per bit width.
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

using namespace amret;

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    bench::SweepConfig config;
    config.model = args.get("model", "vgg19");
    config.retrain_epochs = 3;
    config.apply_args(args);

    const auto pair = config.make_data();
    train::RetrainPipeline pipeline(config.pipeline_config(), pair.train, pair.test);
    auto& reg = appmult::Registry::instance();

    const std::vector<std::string> mults = {"mul8u_1DMU", "mul7u_rm6", "mul6u_rm4"};
    util::TablePrinter table({"Multiplier", "Init/%", "STE/%", "True grad (HWS=0)/%",
                              "Ours/%", "HWS"});
    util::CsvWriter csv({"multiplier", "initial", "ste", "true_grad", "ours", "hws"});

    unsigned prepared_bits = 0;
    for (const auto& name : mults) {
        const unsigned bits = reg.info(name).bits;
        if (bits != prepared_bits) {
            util::log_info("preparing ", config.model, " at ", bits, " bits ...");
            pipeline.prepare(bits);
            prepared_bits = bits;
        }
        const auto& lut = reg.lut(name);
        const unsigned hws = bench::bench_hws(name);

        util::log_info("ablation for ", name, " ...");
        const auto ste = pipeline.retrain(lut, core::build_ste_grad(bits));
        const auto raw = pipeline.retrain(lut, core::build_true_grad(lut));
        const auto ours = pipeline.retrain(lut, core::build_difference_grad(lut, hws));

        table.add_row({name, util::TablePrinter::num(100.0 * ste.initial_top1, 2),
                       util::TablePrinter::num(100.0 * ste.final_top1, 2),
                       util::TablePrinter::num(100.0 * raw.final_top1, 2),
                       util::TablePrinter::num(100.0 * ours.final_top1, 2),
                       std::to_string(hws)});
        csv.add_row({name, std::to_string(ste.initial_top1),
                     std::to_string(ste.final_top1), std::to_string(raw.final_top1),
                     std::to_string(ours.final_top1), std::to_string(hws)});
    }

    std::printf("Gradient ablation: STE vs un-smoothed finite difference vs the "
                "full difference-based method (%s)\n",
                config.model.c_str());
    table.print();
    csv.save(bench::results_dir() + "/grad_ablation.csv");
    std::printf("\nrows saved to %s/grad_ablation.csv\n", bench::results_dir().c_str());

    // Gradient-table statistics: how much each estimator deviates from STE,
    // and how much smoothing tames the raw finite difference. RMS is over
    // the full 2^(2B) table of dAM/dX.
    std::printf("\nGradient-table statistics (RMS over all operand pairs):\n");
    util::TablePrinter stats_table({"Multiplier", "RMS(STE)", "RMS(raw - STE)",
                                    "RMS(ours - STE)", "RMS(raw - ours)"});
    auto rms_diff = [](const std::vector<float>& a, const std::vector<float>& b) {
        double acc = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const double d = static_cast<double>(a[i]) - b[i];
            acc += d * d;
        }
        return std::sqrt(acc / static_cast<double>(a.size()));
    };
    auto rms = [](const std::vector<float>& a) {
        double acc = 0.0;
        for (const float v : a) acc += static_cast<double>(v) * v;
        return std::sqrt(acc / static_cast<double>(a.size()));
    };
    for (const auto& name : mults) {
        const auto& lut = reg.lut(name);
        const auto ste_g = core::build_ste_grad(lut.bits());
        const auto raw_g = core::build_true_grad(lut);
        const auto our_g = core::build_difference_grad(lut, bench::bench_hws(name));
        stats_table.add_row(
            {name, util::TablePrinter::num(rms(ste_g.dx_table()), 1),
             util::TablePrinter::num(rms_diff(raw_g.dx_table(), ste_g.dx_table()), 1),
             util::TablePrinter::num(rms_diff(our_g.dx_table(), ste_g.dx_table()), 1),
             util::TablePrinter::num(rms_diff(raw_g.dx_table(), our_g.dx_table()), 1)});
    }
    stats_table.print();
    std::printf("\nReading: smoothing (Eq. 4) removes most of the raw finite\n"
                "difference's stair noise while keeping its systematic deviation\n"
                "from STE — exactly the paper's Fig. 3 narrative.\n");
    return 0;
}
