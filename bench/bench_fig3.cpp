/// \file bench_fig3.cpp
/// \brief Regenerates Fig. 3: the AppMult function AM(W_f = 10, X) of the
///        7-bit truncated multiplier (mul7u_rm6, the Fig. 2 design), its
///        Eq. (4) smoothing with HWS = 4, the difference-based gradient
///        (Eqs. 5-6), and the constant STE gradient — as printable series
///        plus a CSV for plotting.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>

using namespace amret;

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    const std::string mult = args.get("mult", "mul7u_rm6");
    const auto wf = static_cast<std::uint64_t>(args.get_int("wf", 10));
    const auto hws = static_cast<unsigned>(args.get_int("hws", 4));

    auto& reg = appmult::Registry::instance();
    const auto& lut = reg.lut(mult);
    const std::uint64_t n = lut.domain();

    std::vector<double> row(n);
    for (std::uint64_t x = 0; x < n; ++x) row[x] = static_cast<double>(lut(wf, x));
    const auto smoothed = core::smooth_row(row, hws);
    const auto grad = core::difference_gradient_row(row, hws);

    std::printf("Fig. 3 data for %s, W_f = %llu, HWS = %u\n", mult.c_str(),
                static_cast<unsigned long long>(wf), hws);
    std::printf("(a) AppMult function, smoothed function, AccMult function\n");
    std::printf("(b) difference-based gradient vs STE gradient (constant %llu)\n\n",
                static_cast<unsigned long long>(wf));

    util::CsvWriter csv({"x", "appmult", "smoothed", "accurate", "diff_grad", "ste_grad"});
    for (std::uint64_t x = 0; x < n; ++x) {
        csv.add_row({std::to_string(x), std::to_string(row[x]),
                     std::to_string(smoothed[x]), std::to_string(wf * x),
                     std::to_string(grad[x]), std::to_string(wf)});
    }
    const std::string path = bench::results_dir() + "/fig3.csv";
    csv.save(path);

    // Compact console rendering: sample every 4th point.
    util::TablePrinter table({"X", "AM(10,X)", "S(10,X)", "AccMult", "diff grad",
                              "STE grad"});
    for (std::uint64_t x = 0; x < n; x += 4) {
        table.add_row({std::to_string(x), util::TablePrinter::num(row[x], 0),
                       util::TablePrinter::num(smoothed[x], 1),
                       std::to_string(wf * x), util::TablePrinter::num(grad[x], 2),
                       std::to_string(wf)});
    }
    table.print();

    // The headline observation of Fig. 3: the three largest smoothed
    // gradients sit near the stair edges X = 32, 64, 96.
    std::vector<std::pair<double, std::uint64_t>> peaks;
    for (std::uint64_t x = hws + 1; x + hws + 1 < n; ++x)
        peaks.emplace_back(grad[x], x);
    std::sort(peaks.rbegin(), peaks.rend());
    std::printf("\nlargest difference-gradient points (paper: near X = 31, 63, 95):\n");
    for (int i = 0; i < 6 && i < static_cast<int>(peaks.size()); ++i)
        std::printf("  X = %3llu  grad = %.2f\n",
                    static_cast<unsigned long long>(peaks[static_cast<std::size_t>(i)].second),
                    peaks[static_cast<std::size_t>(i)].first);
    std::printf("\nfull series saved to %s\n", path.c_str());
    return 0;
}
