/// \file bench_table2_resnet.cpp
/// \brief Regenerates Table II (bottom): ResNet18 on the CIFAR-10-like task,
///        STE vs difference-based gradient for every 7/8-bit AppMult.
///
/// Shares its sweep cache (results/table2_resnet.csv) with bench_fig5,
/// which plots the same data as accuracy-vs-power trade-off curves.
#include "bench_common.hpp"

using namespace amret;

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    bench::SweepConfig config;
    config.model = "resnet18";
    config.apply_args(args);

    const auto rows =
        bench::run_or_load_sweep(config, bench::table2_multipliers(), "table2_resnet");
    bench::print_table2(rows,
                        "Table II (bottom): ResNet18, STE vs difference-based "
                        "gradient (CIFAR-10-like synthetic task, slim model)");
    return 0;
}
