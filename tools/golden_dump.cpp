/// \file golden_dump.cpp
/// \brief Prints the golden FNV-1a hashes pinned by tests/test_kernels.cpp.
///
/// The kernel-layer golden test asserts that ApproxConv2d / ApproxLinear /
/// DepthwiseConv2d / IntInferenceEngine outputs are bitwise-identical to the
/// pre-refactor implementations on fixed seeds. This tool regenerates the
/// expected hashes; run it on a known-good build and paste its output into
/// the kGolden table of test_kernels.cpp if a deliberate numerical change is
/// ever made (the determinism contract makes the hashes thread-count
/// independent, so one table covers AMRET_THREADS = 1/2/8).
#include "amret.hpp"

#include <cinttypes>
#include <cstdio>

namespace {

using namespace amret;

std::uint64_t fnv1a(const float* data, std::int64_t n) {
    std::uint64_t h = 1469598103934665603ull;
    const auto* bytes = reinterpret_cast<const unsigned char*>(data);
    for (std::int64_t i = 0; i < n * 4; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t hash_tensor(const tensor::Tensor& t) { return fnv1a(t.data(), t.numel()); }

approx::MultiplierConfig make_config(const std::string& name) {
    auto& reg = appmult::Registry::instance();
    approx::MultiplierConfig config;
    config.lut = std::make_shared<appmult::AppMultLut>(reg.lut(name));
    config.grad = std::make_shared<core::GradLut>(
        core::build_difference_grad(reg.lut(name), 8));
    return config;
}

void print(const char* key, std::uint64_t h) {
    std::printf("{\"%s\", 0x%016" PRIx64 "ull},\n", key, h);
}

void dump_conv(const char* tag, const std::string& mult, bool per_channel) {
    util::Rng wrng(101);
    approx::ApproxConv2d conv(3, 8, 3, 1, 1, wrng);
    conv.set_multiplier(make_config(mult));
    conv.set_mode(approx::ComputeMode::kQuantized);
    conv.set_per_channel_weights(per_channel);
    util::Rng xrng(202);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{2, 3, 8, 8}, xrng);
    nn::Context ctx;
    const tensor::Tensor y = conv.forward(x, ctx);
    util::Rng grng(303);
    const tensor::Tensor gy = tensor::Tensor::randn(y.shape(), grng);
    const tensor::Tensor gx = conv.backward(gy, ctx);
    std::printf("// %s\n", tag);
    print((std::string(tag) + ".y").c_str(), hash_tensor(y));
    print((std::string(tag) + ".gx").c_str(), hash_tensor(gx));
    print((std::string(tag) + ".gw").c_str(), hash_tensor(conv.weight.grad));
    print((std::string(tag) + ".gb").c_str(), hash_tensor(conv.bias.grad));
}

void dump_float_conv() {
    util::Rng wrng(111);
    approx::ApproxConv2d conv(3, 8, 3, 2, 1, wrng);
    conv.set_mode(approx::ComputeMode::kFloat);
    util::Rng xrng(212);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{2, 3, 9, 9}, xrng);
    nn::Context ctx;
    const tensor::Tensor y = conv.forward(x, ctx);
    util::Rng grng(313);
    const tensor::Tensor gy = tensor::Tensor::randn(y.shape(), grng);
    const tensor::Tensor gx = conv.backward(gy, ctx);
    std::printf("// float conv\n");
    print("fconv.y", hash_tensor(y));
    print("fconv.gx", hash_tensor(gx));
    print("fconv.gw", hash_tensor(conv.weight.grad));
    print("fconv.gb", hash_tensor(conv.bias.grad));
}

void dump_linear() {
    util::Rng wrng(404);
    approx::ApproxLinear linear(24, 10, wrng);
    linear.set_multiplier(make_config("mul8u_2NDH"));
    linear.set_mode(approx::ComputeMode::kQuantized);
    util::Rng xrng(505);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{5, 24}, xrng);
    nn::Context ctx;
    const tensor::Tensor y = linear.forward(x, ctx);
    util::Rng grng(606);
    const tensor::Tensor gy = tensor::Tensor::randn(y.shape(), grng);
    const tensor::Tensor gx = linear.backward(gy, ctx);
    std::printf("// linear\n");
    print("linear.y", hash_tensor(y));
    print("linear.gx", hash_tensor(gx));
    print("linear.gw", hash_tensor(linear.weight.grad));
    print("linear.gb", hash_tensor(linear.bias.grad));
}

void dump_depthwise() {
    util::Rng wrng(707);
    approx::DepthwiseConv2d dw(6, 3, 1, 1, wrng);
    dw.set_multiplier(make_config("mul6u_rm4"));
    dw.set_mode(approx::ComputeMode::kQuantized);
    util::Rng xrng(808);
    const tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{2, 6, 8, 8}, xrng);
    nn::Context ctx;
    const tensor::Tensor y = dw.forward(x, ctx);
    util::Rng grng(909);
    const tensor::Tensor gy = tensor::Tensor::randn(y.shape(), grng);
    const tensor::Tensor gx = dw.backward(gy, ctx);
    std::printf("// depthwise\n");
    print("dw.y", hash_tensor(y));
    print("dw.gx", hash_tensor(gx));
    print("dw.gw", hash_tensor(dw.weight.grad));
    print("dw.gb", hash_tensor(dw.bias.grad));
}

void dump_engine() {
    data::SyntheticConfig dc;
    dc.num_classes = 4;
    dc.height = dc.width = 8;
    dc.train_samples = 64;
    dc.test_samples = 16;
    dc.noise_stddev = 0.3f;
    dc.seed = 77;
    const auto pair = data::make_synthetic(dc);

    util::Rng rng(1010);
    nn::Sequential model;
    auto* conv = model.emplace<approx::ApproxConv2d>(3, 4, 3, 1, 1, rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::MaxPool2d>(2);
    model.emplace<nn::Flatten>();
    model.emplace<nn::Linear>(4 * 4 * 4, 4, rng);
    approx::MultiplierConfig config = make_config("mul8u_17C8");
    conv->set_multiplier(config);
    model.set_training(false);

    approx::IntInferenceEngine engine(model, pair.train, 48);
    util::Rng xrng(1111);
    const tensor::Tensor images =
        tensor::Tensor::randn(tensor::Shape{3, 3, 8, 8}, xrng);
    const tensor::Tensor logits = engine.forward(images);
    std::printf("// int inference engine\n");
    print("engine.logits", hash_tensor(logits));
}

} // namespace

int main() {
    dump_conv("conv_pt", "mul8u_rm8", false);
    dump_conv("conv_pc", "mul7u_rm6", true);
    dump_float_conv();
    dump_linear();
    dump_depthwise();
    dump_engine();
    return 0;
}
