/// \file trace_report.cpp
/// \brief Folds a Chrome trace JSON (e.g. from `amret_cli train --trace` or
/// a bench run) into a top-N self-time table.
///
/// Usage:
///   trace_report trace.json [--top N]
#include "obs/report.hpp"
#include "util/args.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv) {
    const amret::util::ArgParser args(argc, argv);
    if (args.positional().empty()) {
        std::fputs("usage: trace_report <trace.json> [--top N]\n", stderr);
        return 1;
    }
    const std::string path = args.positional()[0];
    const auto top_n = static_cast<std::size_t>(args.get_int("top", 20));

    std::string error;
    const auto records = amret::obs::load_chrome_trace(path, &error);
    if (records.empty()) {
        std::fprintf(stderr, "trace_report: %s: %s\n", path.c_str(),
                     error.empty() ? "no complete (\"X\") events" : error.c_str());
        return 1;
    }
    std::printf("%s: %zu spans\n", path.c_str(), records.size());
    std::fputs(amret::obs::fold_report(records, top_n).c_str(), stdout);
    return 0;
}
