/// \file amret_cli.cpp
/// \brief Command-line interface to the multiplier side of the library.
///
/// Subcommands:
///   list                          all registered multipliers with metrics
///   info    <name>                error metrics + hardware + structure
///   verilog <name> [--out f.v]    export the gate-level netlist
///   lut     <name> --out f.bin    export the product LUT (AMLUT1 format)
///   grad    <name> --hws N --out f.bin   export difference-gradient tables
///   synth   --bits B --nmed P [--out f.v]  run approximate synthesis
///   profile <name>                structural error profile (zero rows, bias,
///                                 magnitude-conditioned error)
///   check   [name...]             static verification: netlist structure,
///                                 LUT/netlist equivalence, gradient-LUT
///                                 invariants, netlist error bounds; exits
///                                 nonzero on any error
///   analyze-static [--models ...] prove the integer inference pipeline
///                                 overflow-free per model x multiplier,
///                                 writing safety certificates; exits
///                                 nonzero on any unprovable config
///   serve   [--duration S ...]    smoke-run the batching inference server
///                                 under closed-loop load (exit 1 on a
///                                 reject storm)
///   explore [--mults a,b ...]     sensitivity-guided mixed-precision DSE:
///                                 per-layer multiplier assignments, Pareto
///                                 front on accuracy vs area
///   simd-info [--check isa]       SIMD dispatch capability table; with
///                                 --check, exit 0 iff that exact level is
///                                 supported (the CI matrix probe)
///
/// Examples:
///   amret_cli info mul7u_rm6
///   amret_cli synth --bits 6 --nmed 0.4 --out mult.v
///   amret_cli check mul8u_2NDH --hws 16
#include "amret.hpp"

#include "kernels/simd/simd.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <unordered_map>

using namespace amret;

namespace {

int cmd_list() {
    auto& reg = appmult::Registry::instance();
    util::TablePrinter table({"Name", "Bits", "ER/%", "NMED/%", "MaxED", "Area/um2",
                              "Power/uW", "Construction"});
    for (const auto& name : reg.names()) {
        const auto& info = reg.info(name);
        const auto& err = reg.error(name);
        const auto& hw = reg.hardware(name);
        table.add_row({name, std::to_string(info.bits),
                       util::TablePrinter::num(100.0 * err.error_rate, 1),
                       util::TablePrinter::num(100.0 * err.nmed, 2),
                       std::to_string(err.max_ed),
                       util::TablePrinter::num(hw.area_um2, 1),
                       util::TablePrinter::num(hw.power_uw, 2), info.family});
    }
    table.print();
    return 0;
}

int cmd_info(const std::string& name) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name)) {
        std::fprintf(stderr, "unknown multiplier: %s (try `amret_cli list`)\n",
                     name.c_str());
        return 1;
    }
    const auto& info = reg.info(name);
    const auto& err = reg.error(name);
    const auto& hw = reg.hardware(name);
    std::printf("%s — %s\n", name.c_str(), info.family.c_str());
    std::printf("  bits: %u   approximate: %s   default HWS: %u\n", info.bits,
                info.approximate ? "yes" : "no", info.default_hws);
    std::printf("  ER: %.2f%%   NMED: %.3f%%   MaxED: %lld\n",
                100.0 * err.error_rate, 100.0 * err.nmed,
                static_cast<long long>(err.max_ed));
    std::printf("  area: %.2f um^2   delay: %.1f ps   power: %.2f uW   gates: %zu\n",
                hw.area_um2, hw.delay_ps, hw.power_uw, hw.gates);
    return 0;
}

int cmd_verilog(const std::string& name, const std::string& out) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name)) {
        std::fprintf(stderr, "unknown multiplier: %s\n", name.c_str());
        return 1;
    }
    const std::string verilog = reg.circuit(name).to_verilog(name);
    if (out.empty()) {
        std::fputs(verilog.c_str(), stdout);
        return 0;
    }
    std::ofstream f(out);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    f << verilog;
    std::printf("wrote %s (%zu gates)\n", out.c_str(), reg.circuit(name).gate_count());
    return 0;
}

int cmd_lut(const std::string& name, const std::string& out) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name) || out.empty()) {
        std::fprintf(stderr, "usage: amret_cli lut <name> --out file.bin\n");
        return 1;
    }
    if (!reg.lut(name).save(out)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s (%u-bit product LUT)\n", out.c_str(), reg.lut(name).bits());
    return 0;
}

int cmd_grad(const std::string& name, unsigned hws, const std::string& out) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name) || out.empty()) {
        std::fprintf(stderr, "usage: amret_cli grad <name> --hws N --out file.bin\n");
        return 1;
    }
    const auto grad = core::build_difference_grad(reg.lut(name), hws);
    if (!grad.save(out)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s (difference gradient, HWS=%u)\n", out.c_str(), hws);
    return 0;
}

int cmd_synth(unsigned bits, double nmed_percent, const std::string& out) {
    als::AlsOptions options;
    options.nmed_budget = nmed_percent / 100.0;
    options.protected_patterns = als::multiplier_zero_patterns(bits);
    const auto exact = multgen::build_netlist(multgen::exact_spec(bits));
    std::printf("synthesizing %u-bit approximate multiplier, NMED budget %.3f%% ...\n",
                bits, nmed_percent);
    const auto result = als::synthesize(exact, options);
    std::printf("done: %d rewrites, area %.2f -> %.2f um^2, NMED %.3f%%, ER %.1f%%\n",
                result.moves, result.area_before_um2, result.area_after_um2,
                100.0 * result.metrics.nmed, 100.0 * result.metrics.error_rate);
    if (!out.empty()) {
        std::ofstream f(out);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out.c_str());
            return 1;
        }
        f << result.netlist.to_verilog("als_mult");
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}

int cmd_profile(const std::string& name) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name)) {
        std::fprintf(stderr, "unknown multiplier: %s\n", name.c_str());
        return 1;
    }
    const auto profile = appmult::profile_error(reg.lut(name));
    std::printf("%s\n", appmult::summarize(profile).c_str());
    std::printf("mean |error| by operand magnitude (low -> high):\n");
    for (std::size_t b = 0; b < profile.mean_abs_error_by_magnitude.size(); ++b) {
        std::printf("  bucket %zu: |err| = %8.2f  signed = %8.2f\n", b,
                    profile.mean_abs_error_by_magnitude[b],
                    profile.mean_signed_error_by_magnitude[b]);
    }
    return 0;
}

/// Trains a model on the synthetic task with optional mid-run resume.
/// `--checkpoint f.ckpt` writes a v2 TrainCheckpoint (weights + optimizer
/// slots + epoch cursor) after every epoch; `--resume` loads it back and
/// continues at the recorded epoch, so an interrupted run finishes with the
/// exact trajectory of an uninterrupted one.
int cmd_train(const util::ArgParser& args) {
    data::SyntheticConfig dc;
    dc.num_classes = 10;
    dc.height = dc.width = 16;
    dc.train_samples = args.get_int("train-samples", 512);
    dc.test_samples = args.get_int("test-samples", 128);
    dc.seed = static_cast<std::uint64_t>(args.get_int("data-seed", 5));
    const auto pair = data::make_synthetic(dc);

    models::ModelConfig mc;
    mc.in_size = 16;
    mc.width_mult = static_cast<float>(args.get_double("width-mult", 0.5));
    auto model = train::make_model(args.get("model", "lenet"), mc);

    const std::string mult = args.get("mult", "");
    const std::string assignment_path = args.get("assignment", "");
    approx::MultiplierAssignment assignment;
    if (!assignment_path.empty()) {
        if (!mult.empty()) {
            std::fprintf(stderr, "--mult and --assignment are exclusive\n");
            return 1;
        }
        const auto loaded = approx::MultiplierAssignment::load(assignment_path);
        if (!loaded) {
            std::fprintf(stderr, "cannot load assignment %s\n",
                         assignment_path.c_str());
            return 1;
        }
        assignment = *loaded;
    } else if (!mult.empty()) {
        // Uniform assignment; hws 0 resolves to the registry default.
        approx::LayerChoice choice;
        choice.multiplier = mult;
        choice.hws = static_cast<unsigned>(args.get_int("hws", 0));
        assignment = approx::MultiplierAssignment::uniform(choice);
    }
    if (!assignment.empty()) {
        try {
            const std::size_t configured = approx::apply_assignment(
                *model, assignment, approx::ComputeMode::kQuantized);
            std::printf("assignment %s: %zu approx layer(s)%s\n",
                        assignment.key().c_str(), configured,
                        assignment.is_uniform() ? " (uniform)" : " (mixed)");
        } catch (const std::exception& e) {
            std::fprintf(stderr, "cannot apply assignment: %s\n", e.what());
            return 1;
        }
    }

    train::TrainConfig tc;
    tc.epochs = static_cast<int>(args.get_int("epochs", 5));
    tc.batch_size = args.get_int("batch", 64);
    tc.microbatches = static_cast<int>(args.get_int("microbatches", 1));
    tc.lr = args.get_double("lr", 1e-3);
    tc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    tc.verbose = true;

    train::Trainer trainer(*model, pair.train, pair.test, tc);
    if (!assignment.empty()) trainer.set_assignment_json(assignment.to_json());
    const std::string ckpt = args.get("checkpoint", "");
    if (!ckpt.empty()) trainer.set_checkpoint_path(ckpt);
    if (args.get_bool("resume", false)) {
        if (ckpt.empty()) {
            std::fprintf(stderr, "--resume requires --checkpoint <file>\n");
            return 1;
        }
        if (trainer.resume_from(ckpt)) {
            std::printf("resumed from %s\n", ckpt.c_str());
            // A v3 checkpoint remembers its multiplier assignment; restore
            // it when the command line did not pick one explicitly.
            if (assignment.empty() && !trainer.loaded_assignment_json().empty()) {
                const auto stored = approx::MultiplierAssignment::from_json(
                    trainer.loaded_assignment_json());
                if (stored) {
                    approx::apply_assignment(*model, *stored,
                                             approx::ComputeMode::kQuantized);
                    trainer.set_assignment_json(stored->to_json());
                    std::printf("applied assignment %s from checkpoint\n",
                                stored->key().c_str());
                }
            }
        } else {
            std::printf("no usable checkpoint at %s, training from scratch\n",
                        ckpt.c_str());
        }
    }

    // Tracing only reads clocks — it never alters chunking, RNG streams, or
    // arithmetic — so a traced run trains bitwise-identical weights.
    const std::string trace_path = args.get("trace", "");
    const bool profile = args.get_bool("profile", false);
    if (!trace_path.empty() || profile) obs::trace_start();

    const auto history = trainer.run();

    if (obs::trace_enabled()) {
        obs::trace_stop();
        if (profile) std::fputs(obs::profile_table().c_str(), stdout);
        if (!trace_path.empty()) {
            if (obs::write_chrome_trace(trace_path))
                std::printf("wrote %s (%zu spans; load in ui.perfetto.dev)\n",
                            trace_path.c_str(), obs::trace_events().size());
            else
                std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        }
    }
    if (profile) {
        const std::string counters = obs::counters_table();
        if (!counters.empty()) std::fputs(counters.c_str(), stdout);
    }

    if (history.test.empty()) return 0;
    std::printf("final: loss %.4f  top1 %.3f  top5 %.3f\n",
                history.test.back().loss, history.test.back().top1,
                history.test.back().top5);
    return 0;
}

/// Smoke-runs the batching inference server end to end: trains a tiny LeNet
/// on the synthetic task once, registers one deployable model per requested
/// multiplier (all sharing the trained weights), then drives the server with
/// the closed-loop load generator and prints latency/QPS/batching stats.
/// Exits nonzero on a reject storm (reject rate above --max-reject-rate) or
/// when nothing was served, so CI can gate on it.
int cmd_serve(const util::ArgParser& args) {
    const double duration_s = args.get_double("duration", 2.0);
    const double max_reject = args.get_double("max-reject-rate", 0.5);

    std::vector<std::string> mult_names;
    {
        std::string mults = args.get("mults", "mul8u_acc,mul7u_rm6");
        std::size_t pos = 0;
        while (pos <= mults.size()) {
            const std::size_t comma = mults.find(',', pos);
            const std::string name =
                mults.substr(pos, comma == std::string::npos ? std::string::npos
                                                             : comma - pos);
            if (!name.empty()) mult_names.push_back(name);
            if (comma == std::string::npos) break;
            pos = comma + 1;
        }
    }
    auto& mult_reg = appmult::Registry::instance();
    for (const auto& name : mult_names) {
        if (!mult_reg.contains(name)) {
            std::fprintf(stderr, "unknown multiplier: %s (try `amret_cli list`)\n",
                         name.c_str());
            return 1;
        }
    }
    if (mult_names.empty()) {
        std::fprintf(stderr, "serve: --mults must name at least one multiplier\n");
        return 1;
    }

    // Optional per-layer assignment for the hot model; the spec carries its
    // content key so a mixed config never aliases a uniform one in the LRU.
    const std::string assignment_path = args.get("assignment", "");
    approx::MultiplierAssignment assignment;
    std::string assignment_key;
    if (!assignment_path.empty()) {
        const auto loaded = approx::MultiplierAssignment::load(assignment_path);
        if (!loaded) {
            std::fprintf(stderr, "cannot load assignment %s\n",
                         assignment_path.c_str());
            return 1;
        }
        assignment = *loaded;
        assignment_key = assignment.key();
        if (!mult_reg.contains(assignment.fallback().multiplier)) {
            std::fprintf(stderr, "unknown multiplier in assignment: %s\n",
                         assignment.fallback().multiplier.c_str());
            return 1;
        }
    }

    // One tiny trained snapshot shared by every served model variant.
    data::SyntheticConfig dc;
    dc.num_classes = 6;
    dc.height = dc.width = 8;
    dc.train_samples = 240;
    dc.test_samples = 120;
    dc.noise_stddev = 0.3f;
    dc.seed = 77;
    const auto pair = data::make_synthetic(dc);

    models::ModelConfig mc;
    mc.in_size = 8;
    mc.num_classes = 6;
    mc.width_mult = 0.5f;

    std::printf("training snapshot (lenet, %s, %ld epochs) ...\n",
                mult_names[0].c_str(), args.get_int("train-epochs", 3));
    auto model = train::make_model("lenet", mc);
    {
        approx::LayerChoice choice;
        choice.multiplier = mult_names[0];
        choice.grad = core::GradientMode::kSte;
        approx::apply_assignment(*model,
                                 approx::MultiplierAssignment::uniform(choice),
                                 approx::ComputeMode::kQuantized);
    }
    train::TrainConfig tc;
    tc.epochs = static_cast<int>(args.get_int("train-epochs", 3));
    tc.batch_size = 24;
    tc.lr = 3e-3;
    train::Trainer trainer(*model, pair.train, pair.test, tc);
    trainer.train_only(tc.epochs);
    const auto snap = train::snapshot(*model);

    serve::ModelRegistry registry(
        [&](const serve::ModelSpec& spec) {
            auto m = train::make_model(spec.model, mc);
            if (!spec.assignment.empty() && spec.assignment == assignment_key) {
                approx::apply_assignment(*m, assignment,
                                         approx::ComputeMode::kQuantized);
            } else {
                approx::LayerChoice choice;
                choice.multiplier = spec.multiplier;
                choice.grad = core::GradientMode::kSte;
                approx::apply_assignment(
                    *m, approx::MultiplierAssignment::uniform(choice),
                    approx::ComputeMode::kQuantized);
            }
            train::restore(*m, snap);
            m->set_training(false);
            return std::make_shared<approx::IntInferenceEngine>(*m, pair.train,
                                                                64);
        },
        static_cast<std::size_t>(args.get_int("registry-capacity", 4)));

    serve::ServeConfig sc;
    sc.workers = static_cast<std::size_t>(args.get_int("workers", 2));
    sc.queue_depth = static_cast<std::size_t>(args.get_int("queue-depth", 256));
    sc.max_batch = args.get_int("max-batch", 8);
    sc.deadline_us = args.get_int("deadline-us", 2000);
    sc.queue_timeout_us = args.get_int("queue-timeout-us", 0);
    sc.model_concurrency = args.get_int("model-concurrency", 2);
    serve::InferenceServer server(registry, sc);

    std::vector<serve::ModelSpec> hot{
        {"lenet", mult_names[0], "v0", assignment_key}};
    std::vector<serve::ModelSpec> cold;
    for (std::size_t i = 1; i < mult_names.size(); ++i)
        cold.push_back({"lenet", mult_names[i], "v0", ""});

    std::vector<tensor::Tensor> samples;
    const std::int64_t sample_numel = pair.test.sample_numel();
    for (std::int64_t i = 0; i < std::min<std::int64_t>(16, pair.test.size());
         ++i) {
        tensor::Tensor t(tensor::Shape{1, pair.test.channels, pair.test.height,
                                       pair.test.width});
        std::copy_n(pair.test.images.data() + i * sample_numel, sample_numel,
                    t.data());
        samples.push_back(std::move(t));
    }

    serve::LoadGenConfig lc;
    lc.clients = static_cast<std::size_t>(args.get_int("clients", 8));
    lc.duration_ms = static_cast<std::int64_t>(duration_s * 1000.0);
    lc.rate_per_client = args.get_double("rate", 0.0);
    lc.bursty = args.get_bool("bursty", false);
    lc.hot_fraction = args.get_double("hot-fraction", 0.9);

    std::printf("serving for %.1f s (%zu clients, %zu workers, max_batch %lld, "
                "deadline %lld us) ...\n",
                duration_s, lc.clients, sc.workers,
                static_cast<long long>(sc.max_batch),
                static_cast<long long>(sc.deadline_us));
    const auto report = serve::run_loadgen(server, hot, cold, samples, lc);
    server.stop(true);
    const auto stats = server.stats();
    const auto rstats = registry.stats();

    std::printf("requests: %lld total, %lld ok, %lld rejected, %lld timeout, "
                "%lld error\n",
                static_cast<long long>(report.total),
                static_cast<long long>(report.ok),
                static_cast<long long>(report.rejected),
                static_cast<long long>(report.timeouts),
                static_cast<long long>(report.errors));
    std::printf("latency:  p50 %.0f us  p95 %.0f us  p99 %.0f us  mean %.0f us\n",
                report.p50_us, report.p95_us, report.p99_us, report.mean_us);
    std::printf("throughput: %.0f qps   mean batch %.2f (%lld batches)\n",
                report.qps, stats.mean_batch(),
                static_cast<long long>(stats.batches));
    std::printf("registry: %lld loads, %lld hits, %lld evictions, %zu resident\n",
                static_cast<long long>(rstats.loads),
                static_cast<long long>(rstats.hits),
                static_cast<long long>(rstats.evictions), rstats.resident);

    if (report.ok == 0) {
        std::fprintf(stderr, "serve: no request was served\n");
        return 1;
    }
    if (report.reject_rate > max_reject) {
        std::fprintf(stderr, "serve: reject storm (%.1f%% > %.1f%%)\n",
                     100.0 * report.reject_rate, 100.0 * max_reject);
        return 1;
    }
    return 0;
}

std::vector<std::string> split_list(const std::string& csv) {
    std::vector<std::string> items;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string item =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (!item.empty()) items.push_back(item);
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return items;
}

/// Proves one model under a per-layer multiplier assignment. The netlist
/// error band is combined conservatively across every multiplier the
/// assignment uses (widest band, AND of proven; no constant-gate area is
/// claimed). Certificates are keyed by the graph digest as usual and the
/// assignment content key is carried as identity metadata.
int analyze_static_assignment(const util::ArgParser& args,
                              const approx::MultiplierAssignment& assignment,
                              const std::vector<std::string>& model_names,
                              const data::DatasetPair& pair,
                              const std::string& out_dir) {
    auto& reg = appmult::Registry::instance();
    std::vector<std::string> used{assignment.fallback().multiplier};
    for (const auto& [index, choice] : assignment.overrides())
        if (std::find(used.begin(), used.end(), choice.multiplier) == used.end())
            used.push_back(choice.multiplier);
    for (const auto& name : used) {
        if (!reg.contains(name)) {
            std::fprintf(stderr, "unknown multiplier in assignment: %s\n",
                         name.c_str());
            return 1;
        }
    }

    analysis::NetlistBoundsSummary combined;
    combined.present = true;
    combined.proven = true;
    bool first = true;
    for (const auto& mult : used) {
        const verify::BitBoundsResult bounds =
            verify::analyze_error_bounds(reg.circuit(mult), reg.info(mult).bits);
        combined.proven = combined.proven && bounds.proven;
        combined.error_lo = first ? bounds.error.lo
                                  : std::min(combined.error_lo, bounds.error.lo);
        combined.error_hi = first ? bounds.error.hi
                                  : std::max(combined.error_hi, bounds.error.hi);
        combined.support_mask |= bounds.support_mask;
        first = false;
    }

    const std::string akey = assignment.key();
    std::size_t unsafe = 0;
    for (const auto& model_name : model_names) {
        models::ModelConfig mc;
        mc.in_size = 16;
        mc.num_classes = 10;
        mc.width_mult = static_cast<float>(args.get_double("width-mult", 0.25));
        std::unique_ptr<nn::Sequential> model;
        try {
            model = train::make_model(model_name, mc);
            approx::apply_assignment(*model, assignment,
                                     approx::ComputeMode::kQuantized);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "cannot configure %s: %s\n", model_name.c_str(),
                         e.what());
            return 1;
        }

        analysis::GraphDesc desc;
        try {
            approx::IntInferenceEngine engine(*model, pair.train, 32,
                                              approx::SafetyPolicy::kOff);
            desc = engine.describe();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%-10s x assignment %s cannot compile: %s\n",
                         model_name.c_str(), akey.c_str(), e.what());
            ++unsafe;
            continue;
        }
        desc.model = model_name;
        desc.multiplier = assignment.is_uniform()
                              ? assignment.fallback().multiplier
                              : "mixed";
        desc.assignment = akey;

        const std::string key = analysis::digest_key(desc);
        auto& cache = analysis::CertificateCache::instance();
        std::shared_ptr<const analysis::Certificate> cert = cache.lookup(key);
        if (cert == nullptr || cert->ops.empty()) {
            auto fresh = std::make_shared<analysis::Certificate>(
                analysis::analyze_graph(desc));
            fresh->netlist = combined;
            if (!fresh->netlist.proven) {
                fresh->diags.push_back(verify::Diagnostic{
                    verify::Severity::kError, "netlist-bounds", verify::kNoObject,
                    "multiplier netlist error bounds unprovable"});
                fresh->safe = false;
            }
            cache.store(fresh);
            cert = fresh;
        }
        std::printf("%-10s x assignment %s %s  %s\n", model_name.c_str(),
                    akey.c_str(), key.c_str(), cert->summary().c_str());
        for (const auto& diag : cert->diags)
            if (diag.severity != verify::Severity::kNote)
                std::printf("  %s\n", verify::to_string(diag).c_str());
        if (!cert->safe) ++unsafe;

        std::ofstream f(out_dir + "/cert_" + model_name + "_assignment_" + akey +
                        ".json");
        if (f) f << cert->to_json();
    }
    std::printf("analyzed %zu config(s): %zu unsafe\n", model_names.size(),
                unsafe);
    return unsafe == 0 ? 0 : 1;
}

/// Statically proves the integer deployment pipeline overflow-free for each
/// model x multiplier config: compiles an IntInferenceEngine against the
/// synthetic calibration set, runs the interval analyzer over the compiled
/// graph, embeds the multiplier's bit-level netlist error bounds, and writes
/// one certificate JSON per config (plus the content-addressed cache entry).
/// With --assignment the multiplier grid is replaced by that one per-layer
/// configuration. Exits nonzero when any config cannot be proven safe.
int cmd_analyze_static(const util::ArgParser& args) {
    const std::string out_dir = args.get("out-dir", "results");
    analysis::CertificateCache::instance().set_directory(out_dir);

    const std::vector<std::string> model_names =
        split_list(args.get("models", "lenet,vgg11"));
    auto& reg = appmult::Registry::instance();
    std::vector<std::string> mult_names = split_list(args.get("mults", ""));
    if (mult_names.empty()) mult_names = reg.names();
    for (const auto& name : mult_names) {
        if (!reg.contains(name)) {
            std::fprintf(stderr, "unknown multiplier: %s (try `amret_cli list`)\n",
                         name.c_str());
            return 1;
        }
    }

    data::SyntheticConfig dc;
    dc.num_classes = 10;
    dc.height = dc.width = 16;
    dc.train_samples = 64;
    dc.test_samples = 16;
    dc.seed = 11;
    const auto pair = data::make_synthetic(dc);

    const std::string assignment_path = args.get("assignment", "");
    if (!assignment_path.empty()) {
        const auto loaded = approx::MultiplierAssignment::load(assignment_path);
        if (!loaded) {
            std::fprintf(stderr, "cannot load assignment %s\n",
                         assignment_path.c_str());
            return 1;
        }
        return analyze_static_assignment(args, *loaded, model_names, pair,
                                         out_dir);
    }

    // The netlist error band only depends on the multiplier, not the model —
    // derive it once per multiplier.
    std::unordered_map<std::string, analysis::NetlistBoundsSummary> bounds_by_mult;
    for (const auto& mult : mult_names) {
        const verify::BitBoundsResult bounds =
            verify::analyze_error_bounds(reg.circuit(mult), reg.info(mult).bits);
        analysis::NetlistBoundsSummary summary;
        summary.present = true;
        summary.proven = bounds.proven;
        summary.error_lo = bounds.error.lo;
        summary.error_hi = bounds.error.hi;
        summary.support_mask = bounds.support_mask;
        summary.constant_gates = bounds.constant_gates.size();
        summary.constant_area_um2 = bounds.constant_area_um2;
        bounds_by_mult.emplace(mult, summary);
    }

    std::size_t unsafe = 0;
    for (const auto& model_name : model_names) {
        for (const auto& mult : mult_names) {
            models::ModelConfig mc;
            mc.in_size = 16;
            mc.num_classes = 10;
            mc.width_mult = static_cast<float>(args.get_double("width-mult", 0.25));
            std::unique_ptr<nn::Sequential> model;
            try {
                model = train::make_model(model_name, mc);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "unknown model: %s (%s)\n", model_name.c_str(),
                             e.what());
                return 1;
            }
            approx::MultiplierConfig config;
            config.lut = std::make_shared<appmult::AppMultLut>(reg.lut(mult));
            config.grad = std::make_shared<core::GradLut>(core::build_difference_grad(
                *config.lut, reg.info(mult).default_hws));
            approx::configure_approx_layers(*model, config,
                                            approx::ComputeMode::kQuantized);

            analysis::GraphDesc desc;
            try {
                // Analysis runs explicitly below so the certificate carries
                // the model/multiplier identity the engine cannot know.
                approx::IntInferenceEngine engine(*model, pair.train, 32,
                                                  approx::SafetyPolicy::kOff);
                desc = engine.describe();
            } catch (const std::exception& e) {
                std::fprintf(stderr, "%-10s x %-12s cannot compile: %s\n",
                             model_name.c_str(), mult.c_str(), e.what());
                ++unsafe;
                continue;
            }
            desc.model = model_name;
            desc.multiplier = mult;
            desc.hws = reg.info(mult).default_hws;

            const std::string key = analysis::digest_key(desc);
            auto& cache = analysis::CertificateCache::instance();
            std::shared_ptr<const analysis::Certificate> cert = cache.lookup(key);
            if (cert == nullptr || cert->ops.empty()) {
                auto fresh = std::make_shared<analysis::Certificate>(
                    analysis::analyze_graph(desc));
                fresh->netlist = bounds_by_mult.at(mult);
                if (!fresh->netlist.proven) {
                    fresh->diags.push_back(verify::Diagnostic{
                        verify::Severity::kError, "netlist-bounds", verify::kNoObject,
                        "multiplier netlist error bounds unprovable"});
                    fresh->safe = false;
                }
                cache.store(fresh);
                cert = fresh;
            }
            std::printf("%-10s x %-12s %s  %s\n", model_name.c_str(), mult.c_str(),
                        key.c_str(), cert->summary().c_str());
            for (const auto& diag : cert->diags)
                if (diag.severity != verify::Severity::kNote)
                    std::printf("  %s\n", verify::to_string(diag).c_str());
            if (!cert->safe) ++unsafe;

            std::ofstream f(out_dir + "/cert_" + model_name + "_" + mult + ".json");
            if (f) f << cert->to_json();
        }
    }
    const auto stats = analysis::CertificateCache::instance().stats();
    std::printf("analyzed %zu config(s): %zu unsafe (cache: %lld hit, %lld miss)\n",
                model_names.size() * mult_names.size(), unsafe,
                static_cast<long long>(stats.hits),
                static_cast<long long>(stats.misses));
    return unsafe == 0 ? 0 : 1;
}

/// Mixed-precision design-space exploration: trains a uniform baseline on
/// the synthetic task, probes per-layer sensitivity, sweeps per-layer
/// assignments (resumable via the content-addressed cache), and emits the
/// accuracy-vs-area Pareto front as CSV + BENCH_explore.json. `--emit-best`
/// writes the best mixed assignment as JSON for `train/serve/analyze-static
/// --assignment`; `--require-mixed-dominates` makes CI fail when no mixed
/// point beats the best uniform.
int cmd_explore(const util::ArgParser& args) {
    explore::DseConfig config;
    config.candidates =
        split_list(args.get("mults", "mul8u_acc,mul8u_2NDH,mul8u_rm8"));
    auto& reg = appmult::Registry::instance();
    for (const auto& name : config.candidates) {
        if (!reg.contains(name)) {
            std::fprintf(stderr, "unknown multiplier: %s (try `amret_cli list`)\n",
                         name.c_str());
            return 1;
        }
    }
    if (config.candidates.empty()) {
        std::fprintf(stderr, "explore: --mults must name at least one multiplier\n");
        return 1;
    }

    data::SyntheticConfig dc;
    dc.num_classes = static_cast<int>(args.get_int("classes", 6));
    dc.height = dc.width = 12;
    dc.train_samples = args.get_int("train-samples", 384);
    dc.test_samples = args.get_int("test-samples", 128);
    dc.seed = static_cast<std::uint64_t>(args.get_int("data-seed", 5));
    const auto pair = data::make_synthetic(dc);

    config.model.in_size = 12;
    config.model.num_classes = dc.num_classes;
    config.model.width_mult = static_cast<float>(args.get_double("width-mult", 0.5));
    config.train.batch_size = args.get_int("batch", 32);
    config.train.lr = args.get_double("lr", 2e-3);
    config.train.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    config.baseline_epochs = static_cast<int>(args.get_int("baseline-epochs", 3));
    config.retrain_epochs = static_cast<int>(args.get_int("retrain-epochs", 1));
    config.area_budget_um2 = args.get_double("area-budget", 0.0);
    config.max_grid = static_cast<std::size_t>(args.get_int("max-grid", 64));
    config.beam_width = static_cast<std::size_t>(args.get_int("beam", 4));
    config.shard_count = static_cast<std::size_t>(args.get_int("shards", 1));
    config.shard_index = static_cast<std::size_t>(args.get_int("shard-index", 0));
    config.cache_dir = args.get("cache-dir", "");
    config.verbose = true;
    if (config.shard_index >= config.shard_count) {
        std::fprintf(stderr, "explore: --shard-index must be < --shards\n");
        return 1;
    }

    explore::DseResult result;
    try {
        result = explore::run_dse(pair, config);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "explore: %s\n", e.what());
        return 1;
    }

    util::TablePrinter table(
        {"Key", "Kind", "Top1", "Area/um2", "Energy/nJ", "Front"});
    for (const auto& point : result.points) {
        table.add_row({point.key, point.mixed ? "mixed" : "uniform",
                       util::TablePrinter::num(point.accuracy, 3),
                       util::TablePrinter::num(point.area_um2, 1),
                       util::TablePrinter::num(point.energy_nj, 3),
                       point.on_front ? "*" : ""});
    }
    table.print();
    std::printf("baseline top1 %.3f | %zu point(s), %zu on front, "
                "%zu retrained, %zu from cache, %zu on other shards\n",
                result.baseline_accuracy, result.points.size(),
                result.front.size(), result.evaluations, result.cache_hits,
                result.sharded_out);
    if (result.best_uniform != explore::DseResult::npos) {
        const auto& bu = result.points[result.best_uniform];
        std::printf("best uniform: %s top1 %.3f area %.1f um^2\n", bu.key.c_str(),
                    bu.accuracy, bu.area_um2);
    }
    if (result.best_mixed != explore::DseResult::npos) {
        const auto& bm = result.points[result.best_mixed];
        std::printf("best mixed:   %s top1 %.3f area %.1f um^2%s\n",
                    bm.key.c_str(), bm.accuracy, bm.area_um2,
                    result.mixed_dominates ? "  [dominates best uniform]" : "");
    }

    const std::string out_dir = args.get("out-dir", "results");
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec); // best-effort
    const std::string csv = out_dir + "/pareto_explore.csv";
    const std::string json = out_dir + "/BENCH_explore.json";
    if (!explore::write_pareto_csv(result, csv))
        std::fprintf(stderr, "cannot write %s\n", csv.c_str());
    else
        std::printf("wrote %s\n", csv.c_str());
    if (!explore::write_bench_json(result, json))
        std::fprintf(stderr, "cannot write %s\n", json.c_str());
    else
        std::printf("wrote %s\n", json.c_str());

    const std::string emit = args.get("emit-best", "");
    if (!emit.empty()) {
        const std::size_t best = result.best_mixed != explore::DseResult::npos
                                     ? result.best_mixed
                                     : result.best_uniform;
        if (best == explore::DseResult::npos ||
            !result.points[best].assignment.save(emit)) {
            std::fprintf(stderr, "cannot write %s\n", emit.c_str());
            return 1;
        }
        std::printf("wrote %s (assignment %s)\n", emit.c_str(),
                    result.points[best].key.c_str());
    }

    if (args.get_bool("require-mixed-dominates", false) &&
        !result.mixed_dominates) {
        std::fprintf(stderr,
                     "explore: no mixed assignment dominates the best uniform\n");
        return 1;
    }
    return 0;
}

int cmd_check(const util::ArgParser& args) {
    verify::CheckOptions options;
    const long hws = args.get_int("hws", -1);
    if (hws >= 0) options.hws = static_cast<unsigned>(hws);
    options.check_gradients = !args.get_bool("skip-grad", false);
    options.cross_check_netlist = !args.get_bool("skip-sim", false);

    // Positionals after the subcommand select multipliers; none = all.
    std::vector<std::string> names(args.positional().begin() + 1,
                                   args.positional().end());
    const auto results =
        verify::check_registry(appmult::Registry::instance(), names, options);

    std::size_t failed = 0;
    for (const auto& [name, diags] : results) {
        std::printf("%-12s %s\n", name.c_str(), verify::summarize(diags).c_str());
        for (const auto& diag : diags)
            std::printf("  %s\n", verify::to_string(diag).c_str());
        if (verify::has_errors(diags)) ++failed;
    }
    std::printf("checked %zu multiplier%s: %zu failed\n", results.size(),
                results.size() == 1 ? "" : "s", failed);
    return failed == 0 ? 0 : 1;
}

/// Prints the per-level SIMD capability table (compiled / cpu / supported)
/// and the active dispatch pick — which already reflects AMRET_SIMD, so the
/// table doubles as an env-var debugging aid. With --check <isa> the exit
/// status becomes the probe result: 0 only when that exact level would run.
/// The CI simd-dispatch matrix uses the probe to decide between running
/// tier-1 under AMRET_SIMD=<isa> and skipping the leg with a notice.
int cmd_simd_info(const util::ArgParser& args) {
    using kernels::simd::Isa;
    const Isa active = kernels::simd::select();
    std::printf("%-8s %-9s %-4s %-10s %s\n", "isa", "compiled", "cpu",
                "supported", "active");
    for (const Isa isa : {Isa::kScalar, Isa::kSsse3, Isa::kAvx2, Isa::kAvx512})
        std::printf("%-8s %-9s %-4s %-10s %s\n", kernels::simd::isa_name(isa),
                    kernels::simd::compiled(isa) ? "yes" : "no",
                    kernels::simd::cpu_supports(isa) ? "yes" : "no",
                    kernels::simd::supported(isa) ? "yes" : "no",
                    isa == active ? "*" : "");
    const std::string want = args.get("check", "");
    if (!want.empty()) {
        Isa req = Isa::kScalar;
        if (!kernels::simd::parse_isa(want.c_str(), &req)) {
            std::fprintf(stderr,
                         "unknown ISA '%s' (scalar|ssse3|avx2|avx512)\n",
                         want.c_str());
            return 2;
        }
        const bool ok = kernels::simd::supported(req);
        std::printf("check %s: %s\n", want.c_str(),
                    ok ? "supported" : "unsupported");
        return ok ? 0 : 1;
    }
    return 0;
}

void usage() {
    std::fputs(
        "usage: amret_cli <command> [args]\n"
        "  list                         all multipliers\n"
        "  info    <name>               metrics + hardware\n"
        "  verilog <name> [--out f.v]   export netlist\n"
        "  lut     <name> --out f.bin   export product LUT\n"
        "  grad    <name> [--hws N] --out f.bin  export gradient tables\n"
        "  synth   --bits B --nmed P [--out f.v] approximate synthesis\n"
        "  profile <name>               structural error profile\n"
        "  check   [name...] [--hws N] [--skip-grad] [--skip-sim]\n"
        "                               static verification (exit 1 on errors)\n"
        "  analyze-static [--models a,b] [--mults a,b] [--out-dir results]\n"
        "          [--width-mult F] [--assignment f.json]\n"
        "                               prove the integer inference pipeline\n"
        "                               overflow-free per model x multiplier\n"
        "                               (or per-layer assignment); writes\n"
        "                               certificate JSONs, exits 1 on any\n"
        "                               unprovable config\n"
        "  train   [--model lenet] [--mult name | --assignment f.json]\n"
        "          [--epochs N] [--batch N]\n"
        "          [--microbatches K] [--checkpoint f.ckpt] [--resume]\n"
        "          [--trace out.json] [--profile]\n"
        "                               train on the synthetic task; the\n"
        "                               checkpoint enables mid-run resume and\n"
        "                               remembers the assignment (v3);\n"
        "                               --trace writes a Perfetto-loadable\n"
        "                               span trace, --profile prints the\n"
        "                               hierarchical time table\n"
        "  serve   [--duration S] [--clients N] [--workers N] [--max-batch N]\n"
        "          [--deadline-us U] [--queue-depth N] [--queue-timeout-us U]\n"
        "          [--mults a,b,...] [--rate R] [--bursty] [--hot-fraction F]\n"
        "          [--train-epochs N] [--max-reject-rate F]\n"
        "          [--assignment f.json]\n"
        "                               smoke-run the batching inference\n"
        "                               server under closed-loop load (the\n"
        "                               hot model uses the assignment); exits\n"
        "                               nonzero on a reject storm\n"
        "  explore [--mults a,b,...] [--baseline-epochs N] [--retrain-epochs N]\n"
        "          [--area-budget A] [--beam N] [--max-grid N]\n"
        "          [--shards N] [--shard-index I] [--cache-dir d]\n"
        "          [--out-dir results] [--emit-best f.json]\n"
        "          [--require-mixed-dominates]\n"
        "                               sensitivity-guided mixed-precision\n"
        "                               search; emits the accuracy-vs-area\n"
        "                               Pareto front (CSV + BENCH_explore.json)\n"
        "  simd-info [--check isa]      SIMD dispatch capability table\n"
        "                               (compiled/cpu/supported per level +\n"
        "                               the active pick under AMRET_SIMD);\n"
        "                               --check exits 0 iff that level is\n"
        "                               supported (CI matrix probe)\n"
        "global flags:\n"
        "  --threads N                  worker threads (0 = auto; env AMRET_THREADS)\n",
        stderr);
}

} // namespace

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    if (args.positional().empty()) {
        usage();
        return 1;
    }
    const std::string command = args.positional()[0];
    const std::string name = args.positional().size() > 1 ? args.positional()[1] : "";
    const std::string out = args.get("out", "");
    // 0 keeps the runtime default (AMRET_THREADS env, else hardware threads).
    const long threads = args.get_int("threads", 0, "AMRET_THREADS");
    if (threads > 0) runtime::set_num_threads(static_cast<unsigned>(threads));

    if (command == "list") return cmd_list();
    if (command == "info") return cmd_info(name);
    if (command == "verilog") return cmd_verilog(name, out);
    if (command == "lut") return cmd_lut(name, out);
    if (command == "grad")
        return cmd_grad(name, static_cast<unsigned>(args.get_int("hws", 4)), out);
    if (command == "synth")
        return cmd_synth(static_cast<unsigned>(args.get_int("bits", 6)),
                         args.get_double("nmed", 0.4), out);
    if (command == "profile") return cmd_profile(name);
    if (command == "check") return cmd_check(args);
    if (command == "analyze-static") return cmd_analyze_static(args);
    if (command == "train") return cmd_train(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "explore") return cmd_explore(args);
    if (command == "simd-info") return cmd_simd_info(args);
    usage();
    return 1;
}
