/// \file amret_cli.cpp
/// \brief Command-line interface to the multiplier side of the library.
///
/// Subcommands:
///   list                          all registered multipliers with metrics
///   info    <name>                error metrics + hardware + structure
///   verilog <name> [--out f.v]    export the gate-level netlist
///   lut     <name> --out f.bin    export the product LUT (AMLUT1 format)
///   grad    <name> --hws N --out f.bin   export difference-gradient tables
///   synth   --bits B --nmed P [--out f.v]  run approximate synthesis
///   profile <name>                structural error profile (zero rows, bias,
///                                 magnitude-conditioned error)
///   check   [name...]             static verification: netlist structure,
///                                 LUT/netlist equivalence, gradient-LUT
///                                 invariants, netlist error bounds; exits
///                                 nonzero on any error
///   analyze-static [--models ...] prove the integer inference pipeline
///                                 overflow-free per model x multiplier,
///                                 writing safety certificates; exits
///                                 nonzero on any unprovable config
///   serve   [--duration S ...]    smoke-run the batching inference server
///                                 under closed-loop load (exit 1 on a
///                                 reject storm)
///
/// Examples:
///   amret_cli info mul7u_rm6
///   amret_cli synth --bits 6 --nmed 0.4 --out mult.v
///   amret_cli check mul8u_2NDH --hws 16
#include "amret.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <unordered_map>

using namespace amret;

namespace {

int cmd_list() {
    auto& reg = appmult::Registry::instance();
    util::TablePrinter table({"Name", "Bits", "ER/%", "NMED/%", "MaxED", "Area/um2",
                              "Power/uW", "Construction"});
    for (const auto& name : reg.names()) {
        const auto& info = reg.info(name);
        const auto& err = reg.error(name);
        const auto& hw = reg.hardware(name);
        table.add_row({name, std::to_string(info.bits),
                       util::TablePrinter::num(100.0 * err.error_rate, 1),
                       util::TablePrinter::num(100.0 * err.nmed, 2),
                       std::to_string(err.max_ed),
                       util::TablePrinter::num(hw.area_um2, 1),
                       util::TablePrinter::num(hw.power_uw, 2), info.family});
    }
    table.print();
    return 0;
}

int cmd_info(const std::string& name) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name)) {
        std::fprintf(stderr, "unknown multiplier: %s (try `amret_cli list`)\n",
                     name.c_str());
        return 1;
    }
    const auto& info = reg.info(name);
    const auto& err = reg.error(name);
    const auto& hw = reg.hardware(name);
    std::printf("%s — %s\n", name.c_str(), info.family.c_str());
    std::printf("  bits: %u   approximate: %s   default HWS: %u\n", info.bits,
                info.approximate ? "yes" : "no", info.default_hws);
    std::printf("  ER: %.2f%%   NMED: %.3f%%   MaxED: %lld\n",
                100.0 * err.error_rate, 100.0 * err.nmed,
                static_cast<long long>(err.max_ed));
    std::printf("  area: %.2f um^2   delay: %.1f ps   power: %.2f uW   gates: %zu\n",
                hw.area_um2, hw.delay_ps, hw.power_uw, hw.gates);
    return 0;
}

int cmd_verilog(const std::string& name, const std::string& out) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name)) {
        std::fprintf(stderr, "unknown multiplier: %s\n", name.c_str());
        return 1;
    }
    const std::string verilog = reg.circuit(name).to_verilog(name);
    if (out.empty()) {
        std::fputs(verilog.c_str(), stdout);
        return 0;
    }
    std::ofstream f(out);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    f << verilog;
    std::printf("wrote %s (%zu gates)\n", out.c_str(), reg.circuit(name).gate_count());
    return 0;
}

int cmd_lut(const std::string& name, const std::string& out) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name) || out.empty()) {
        std::fprintf(stderr, "usage: amret_cli lut <name> --out file.bin\n");
        return 1;
    }
    if (!reg.lut(name).save(out)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s (%u-bit product LUT)\n", out.c_str(), reg.lut(name).bits());
    return 0;
}

int cmd_grad(const std::string& name, unsigned hws, const std::string& out) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name) || out.empty()) {
        std::fprintf(stderr, "usage: amret_cli grad <name> --hws N --out file.bin\n");
        return 1;
    }
    const auto grad = core::build_difference_grad(reg.lut(name), hws);
    if (!grad.save(out)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s (difference gradient, HWS=%u)\n", out.c_str(), hws);
    return 0;
}

int cmd_synth(unsigned bits, double nmed_percent, const std::string& out) {
    als::AlsOptions options;
    options.nmed_budget = nmed_percent / 100.0;
    options.protected_patterns = als::multiplier_zero_patterns(bits);
    const auto exact = multgen::build_netlist(multgen::exact_spec(bits));
    std::printf("synthesizing %u-bit approximate multiplier, NMED budget %.3f%% ...\n",
                bits, nmed_percent);
    const auto result = als::synthesize(exact, options);
    std::printf("done: %d rewrites, area %.2f -> %.2f um^2, NMED %.3f%%, ER %.1f%%\n",
                result.moves, result.area_before_um2, result.area_after_um2,
                100.0 * result.metrics.nmed, 100.0 * result.metrics.error_rate);
    if (!out.empty()) {
        std::ofstream f(out);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out.c_str());
            return 1;
        }
        f << result.netlist.to_verilog("als_mult");
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}

int cmd_profile(const std::string& name) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name)) {
        std::fprintf(stderr, "unknown multiplier: %s\n", name.c_str());
        return 1;
    }
    const auto profile = appmult::profile_error(reg.lut(name));
    std::printf("%s\n", appmult::summarize(profile).c_str());
    std::printf("mean |error| by operand magnitude (low -> high):\n");
    for (std::size_t b = 0; b < profile.mean_abs_error_by_magnitude.size(); ++b) {
        std::printf("  bucket %zu: |err| = %8.2f  signed = %8.2f\n", b,
                    profile.mean_abs_error_by_magnitude[b],
                    profile.mean_signed_error_by_magnitude[b]);
    }
    return 0;
}

/// Trains a model on the synthetic task with optional mid-run resume.
/// `--checkpoint f.ckpt` writes a v2 TrainCheckpoint (weights + optimizer
/// slots + epoch cursor) after every epoch; `--resume` loads it back and
/// continues at the recorded epoch, so an interrupted run finishes with the
/// exact trajectory of an uninterrupted one.
int cmd_train(const util::ArgParser& args) {
    data::SyntheticConfig dc;
    dc.num_classes = 10;
    dc.height = dc.width = 16;
    dc.train_samples = args.get_int("train-samples", 512);
    dc.test_samples = args.get_int("test-samples", 128);
    dc.seed = static_cast<std::uint64_t>(args.get_int("data-seed", 5));
    const auto pair = data::make_synthetic(dc);

    models::ModelConfig mc;
    mc.in_size = 16;
    mc.width_mult = static_cast<float>(args.get_double("width-mult", 0.5));
    auto model = train::make_model(args.get("model", "lenet"), mc);

    const std::string mult = args.get("mult", "");
    if (!mult.empty()) {
        auto& reg = appmult::Registry::instance();
        if (!reg.contains(mult)) {
            std::fprintf(stderr, "unknown multiplier: %s\n", mult.c_str());
            return 1;
        }
        approx::MultiplierConfig config;
        config.lut = std::make_shared<appmult::AppMultLut>(reg.lut(mult));
        config.grad = std::make_shared<core::GradLut>(core::build_difference_grad(
            *config.lut, static_cast<unsigned>(args.get_int(
                             "hws", static_cast<long>(reg.info(mult).default_hws)))));
        approx::configure_approx_layers(*model, config,
                                        approx::ComputeMode::kQuantized);
    }

    train::TrainConfig tc;
    tc.epochs = static_cast<int>(args.get_int("epochs", 5));
    tc.batch_size = args.get_int("batch", 64);
    tc.microbatches = static_cast<int>(args.get_int("microbatches", 1));
    tc.lr = args.get_double("lr", 1e-3);
    tc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    tc.verbose = true;

    train::Trainer trainer(*model, pair.train, pair.test, tc);
    const std::string ckpt = args.get("checkpoint", "");
    if (!ckpt.empty()) trainer.set_checkpoint_path(ckpt);
    if (args.get_bool("resume", false)) {
        if (ckpt.empty()) {
            std::fprintf(stderr, "--resume requires --checkpoint <file>\n");
            return 1;
        }
        if (trainer.resume_from(ckpt))
            std::printf("resumed from %s\n", ckpt.c_str());
        else
            std::printf("no usable checkpoint at %s, training from scratch\n",
                        ckpt.c_str());
    }

    // Tracing only reads clocks — it never alters chunking, RNG streams, or
    // arithmetic — so a traced run trains bitwise-identical weights.
    const std::string trace_path = args.get("trace", "");
    const bool profile = args.get_bool("profile", false);
    if (!trace_path.empty() || profile) obs::trace_start();

    const auto history = trainer.run();

    if (obs::trace_enabled()) {
        obs::trace_stop();
        if (profile) std::fputs(obs::profile_table().c_str(), stdout);
        if (!trace_path.empty()) {
            if (obs::write_chrome_trace(trace_path))
                std::printf("wrote %s (%zu spans; load in ui.perfetto.dev)\n",
                            trace_path.c_str(), obs::trace_events().size());
            else
                std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        }
    }
    if (profile) {
        const std::string counters = obs::counters_table();
        if (!counters.empty()) std::fputs(counters.c_str(), stdout);
    }

    if (history.test.empty()) return 0;
    std::printf("final: loss %.4f  top1 %.3f  top5 %.3f\n",
                history.test.back().loss, history.test.back().top1,
                history.test.back().top5);
    return 0;
}

/// Smoke-runs the batching inference server end to end: trains a tiny LeNet
/// on the synthetic task once, registers one deployable model per requested
/// multiplier (all sharing the trained weights), then drives the server with
/// the closed-loop load generator and prints latency/QPS/batching stats.
/// Exits nonzero on a reject storm (reject rate above --max-reject-rate) or
/// when nothing was served, so CI can gate on it.
int cmd_serve(const util::ArgParser& args) {
    const double duration_s = args.get_double("duration", 2.0);
    const double max_reject = args.get_double("max-reject-rate", 0.5);

    std::vector<std::string> mult_names;
    {
        std::string mults = args.get("mults", "mul8u_acc,mul7u_rm6");
        std::size_t pos = 0;
        while (pos <= mults.size()) {
            const std::size_t comma = mults.find(',', pos);
            const std::string name =
                mults.substr(pos, comma == std::string::npos ? std::string::npos
                                                             : comma - pos);
            if (!name.empty()) mult_names.push_back(name);
            if (comma == std::string::npos) break;
            pos = comma + 1;
        }
    }
    auto& mult_reg = appmult::Registry::instance();
    for (const auto& name : mult_names) {
        if (!mult_reg.contains(name)) {
            std::fprintf(stderr, "unknown multiplier: %s (try `amret_cli list`)\n",
                         name.c_str());
            return 1;
        }
    }
    if (mult_names.empty()) {
        std::fprintf(stderr, "serve: --mults must name at least one multiplier\n");
        return 1;
    }

    // One tiny trained snapshot shared by every served model variant.
    data::SyntheticConfig dc;
    dc.num_classes = 6;
    dc.height = dc.width = 8;
    dc.train_samples = 240;
    dc.test_samples = 120;
    dc.noise_stddev = 0.3f;
    dc.seed = 77;
    const auto pair = data::make_synthetic(dc);

    models::ModelConfig mc;
    mc.in_size = 8;
    mc.num_classes = 6;
    mc.width_mult = 0.5f;

    std::printf("training snapshot (lenet, %s, %ld epochs) ...\n",
                mult_names[0].c_str(), args.get_int("train-epochs", 3));
    auto model = train::make_model("lenet", mc);
    {
        approx::MultiplierConfig config;
        config.lut = std::make_shared<appmult::AppMultLut>(
            mult_reg.lut(mult_names[0]));
        config.grad = std::make_shared<core::GradLut>(
            core::build_ste_grad(mult_reg.info(mult_names[0]).bits));
        approx::configure_approx_layers(*model, config,
                                        approx::ComputeMode::kQuantized);
    }
    train::TrainConfig tc;
    tc.epochs = static_cast<int>(args.get_int("train-epochs", 3));
    tc.batch_size = 24;
    tc.lr = 3e-3;
    train::Trainer trainer(*model, pair.train, pair.test, tc);
    trainer.train_only(tc.epochs);
    const auto snap = train::snapshot(*model);

    serve::ModelRegistry registry(
        [&](const serve::ModelSpec& spec) {
            auto m = train::make_model(spec.model, mc);
            approx::MultiplierConfig config;
            config.lut = std::make_shared<appmult::AppMultLut>(
                mult_reg.lut(spec.multiplier));
            config.grad = std::make_shared<core::GradLut>(
                core::build_ste_grad(mult_reg.info(spec.multiplier).bits));
            approx::configure_approx_layers(*m, config,
                                            approx::ComputeMode::kQuantized);
            train::restore(*m, snap);
            m->set_training(false);
            return std::make_shared<approx::IntInferenceEngine>(*m, pair.train,
                                                                64);
        },
        static_cast<std::size_t>(args.get_int("registry-capacity", 4)));

    serve::ServeConfig sc;
    sc.workers = static_cast<std::size_t>(args.get_int("workers", 2));
    sc.queue_depth = static_cast<std::size_t>(args.get_int("queue-depth", 256));
    sc.max_batch = args.get_int("max-batch", 8);
    sc.deadline_us = args.get_int("deadline-us", 2000);
    sc.queue_timeout_us = args.get_int("queue-timeout-us", 0);
    sc.model_concurrency = args.get_int("model-concurrency", 2);
    serve::InferenceServer server(registry, sc);

    std::vector<serve::ModelSpec> hot{{"lenet", mult_names[0], "v0"}};
    std::vector<serve::ModelSpec> cold;
    for (std::size_t i = 1; i < mult_names.size(); ++i)
        cold.push_back({"lenet", mult_names[i], "v0"});

    std::vector<tensor::Tensor> samples;
    const std::int64_t sample_numel = pair.test.sample_numel();
    for (std::int64_t i = 0; i < std::min<std::int64_t>(16, pair.test.size());
         ++i) {
        tensor::Tensor t(tensor::Shape{1, pair.test.channels, pair.test.height,
                                       pair.test.width});
        std::copy_n(pair.test.images.data() + i * sample_numel, sample_numel,
                    t.data());
        samples.push_back(std::move(t));
    }

    serve::LoadGenConfig lc;
    lc.clients = static_cast<std::size_t>(args.get_int("clients", 8));
    lc.duration_ms = static_cast<std::int64_t>(duration_s * 1000.0);
    lc.rate_per_client = args.get_double("rate", 0.0);
    lc.bursty = args.get_bool("bursty", false);
    lc.hot_fraction = args.get_double("hot-fraction", 0.9);

    std::printf("serving for %.1f s (%zu clients, %zu workers, max_batch %lld, "
                "deadline %lld us) ...\n",
                duration_s, lc.clients, sc.workers,
                static_cast<long long>(sc.max_batch),
                static_cast<long long>(sc.deadline_us));
    const auto report = serve::run_loadgen(server, hot, cold, samples, lc);
    server.stop(true);
    const auto stats = server.stats();
    const auto rstats = registry.stats();

    std::printf("requests: %lld total, %lld ok, %lld rejected, %lld timeout, "
                "%lld error\n",
                static_cast<long long>(report.total),
                static_cast<long long>(report.ok),
                static_cast<long long>(report.rejected),
                static_cast<long long>(report.timeouts),
                static_cast<long long>(report.errors));
    std::printf("latency:  p50 %.0f us  p95 %.0f us  p99 %.0f us  mean %.0f us\n",
                report.p50_us, report.p95_us, report.p99_us, report.mean_us);
    std::printf("throughput: %.0f qps   mean batch %.2f (%lld batches)\n",
                report.qps, stats.mean_batch(),
                static_cast<long long>(stats.batches));
    std::printf("registry: %lld loads, %lld hits, %lld evictions, %zu resident\n",
                static_cast<long long>(rstats.loads),
                static_cast<long long>(rstats.hits),
                static_cast<long long>(rstats.evictions), rstats.resident);

    if (report.ok == 0) {
        std::fprintf(stderr, "serve: no request was served\n");
        return 1;
    }
    if (report.reject_rate > max_reject) {
        std::fprintf(stderr, "serve: reject storm (%.1f%% > %.1f%%)\n",
                     100.0 * report.reject_rate, 100.0 * max_reject);
        return 1;
    }
    return 0;
}

std::vector<std::string> split_list(const std::string& csv) {
    std::vector<std::string> items;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string item =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (!item.empty()) items.push_back(item);
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return items;
}

/// Statically proves the integer deployment pipeline overflow-free for each
/// model x multiplier config: compiles an IntInferenceEngine against the
/// synthetic calibration set, runs the interval analyzer over the compiled
/// graph, embeds the multiplier's bit-level netlist error bounds, and writes
/// one certificate JSON per config (plus the content-addressed cache entry).
/// Exits nonzero when any config cannot be proven safe.
int cmd_analyze_static(const util::ArgParser& args) {
    const std::string out_dir = args.get("out-dir", "results");
    analysis::CertificateCache::instance().set_directory(out_dir);

    const std::vector<std::string> model_names =
        split_list(args.get("models", "lenet,vgg11"));
    auto& reg = appmult::Registry::instance();
    std::vector<std::string> mult_names = split_list(args.get("mults", ""));
    if (mult_names.empty()) mult_names = reg.names();
    for (const auto& name : mult_names) {
        if (!reg.contains(name)) {
            std::fprintf(stderr, "unknown multiplier: %s (try `amret_cli list`)\n",
                         name.c_str());
            return 1;
        }
    }

    data::SyntheticConfig dc;
    dc.num_classes = 10;
    dc.height = dc.width = 16;
    dc.train_samples = 64;
    dc.test_samples = 16;
    dc.seed = 11;
    const auto pair = data::make_synthetic(dc);

    // The netlist error band only depends on the multiplier, not the model —
    // derive it once per multiplier.
    std::unordered_map<std::string, analysis::NetlistBoundsSummary> bounds_by_mult;
    for (const auto& mult : mult_names) {
        const verify::BitBoundsResult bounds =
            verify::analyze_error_bounds(reg.circuit(mult), reg.info(mult).bits);
        analysis::NetlistBoundsSummary summary;
        summary.present = true;
        summary.proven = bounds.proven;
        summary.error_lo = bounds.error.lo;
        summary.error_hi = bounds.error.hi;
        summary.support_mask = bounds.support_mask;
        summary.constant_gates = bounds.constant_gates.size();
        summary.constant_area_um2 = bounds.constant_area_um2;
        bounds_by_mult.emplace(mult, summary);
    }

    std::size_t unsafe = 0;
    for (const auto& model_name : model_names) {
        for (const auto& mult : mult_names) {
            models::ModelConfig mc;
            mc.in_size = 16;
            mc.num_classes = 10;
            mc.width_mult = static_cast<float>(args.get_double("width-mult", 0.25));
            std::unique_ptr<nn::Sequential> model;
            try {
                model = train::make_model(model_name, mc);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "unknown model: %s (%s)\n", model_name.c_str(),
                             e.what());
                return 1;
            }
            approx::MultiplierConfig config;
            config.lut = std::make_shared<appmult::AppMultLut>(reg.lut(mult));
            config.grad = std::make_shared<core::GradLut>(core::build_difference_grad(
                *config.lut, reg.info(mult).default_hws));
            approx::configure_approx_layers(*model, config,
                                            approx::ComputeMode::kQuantized);

            analysis::GraphDesc desc;
            try {
                // Analysis runs explicitly below so the certificate carries
                // the model/multiplier identity the engine cannot know.
                approx::IntInferenceEngine engine(*model, pair.train, 32,
                                                  approx::SafetyPolicy::kOff);
                desc = engine.describe();
            } catch (const std::exception& e) {
                std::fprintf(stderr, "%-10s x %-12s cannot compile: %s\n",
                             model_name.c_str(), mult.c_str(), e.what());
                ++unsafe;
                continue;
            }
            desc.model = model_name;
            desc.multiplier = mult;
            desc.hws = reg.info(mult).default_hws;

            const std::string key = analysis::digest_key(desc);
            auto& cache = analysis::CertificateCache::instance();
            std::shared_ptr<const analysis::Certificate> cert = cache.lookup(key);
            if (cert == nullptr || cert->ops.empty()) {
                auto fresh = std::make_shared<analysis::Certificate>(
                    analysis::analyze_graph(desc));
                fresh->netlist = bounds_by_mult.at(mult);
                if (!fresh->netlist.proven) {
                    fresh->diags.push_back(verify::Diagnostic{
                        verify::Severity::kError, "netlist-bounds", verify::kNoObject,
                        "multiplier netlist error bounds unprovable"});
                    fresh->safe = false;
                }
                cache.store(fresh);
                cert = fresh;
            }
            std::printf("%-10s x %-12s %s  %s\n", model_name.c_str(), mult.c_str(),
                        key.c_str(), cert->summary().c_str());
            for (const auto& diag : cert->diags)
                if (diag.severity != verify::Severity::kNote)
                    std::printf("  %s\n", verify::to_string(diag).c_str());
            if (!cert->safe) ++unsafe;

            std::ofstream f(out_dir + "/cert_" + model_name + "_" + mult + ".json");
            if (f) f << cert->to_json();
        }
    }
    const auto stats = analysis::CertificateCache::instance().stats();
    std::printf("analyzed %zu config(s): %zu unsafe (cache: %lld hit, %lld miss)\n",
                model_names.size() * mult_names.size(), unsafe,
                static_cast<long long>(stats.hits),
                static_cast<long long>(stats.misses));
    return unsafe == 0 ? 0 : 1;
}

int cmd_check(const util::ArgParser& args) {
    verify::CheckOptions options;
    const long hws = args.get_int("hws", -1);
    if (hws >= 0) options.hws = static_cast<unsigned>(hws);
    options.check_gradients = !args.get_bool("skip-grad", false);
    options.cross_check_netlist = !args.get_bool("skip-sim", false);

    // Positionals after the subcommand select multipliers; none = all.
    std::vector<std::string> names(args.positional().begin() + 1,
                                   args.positional().end());
    const auto results =
        verify::check_registry(appmult::Registry::instance(), names, options);

    std::size_t failed = 0;
    for (const auto& [name, diags] : results) {
        std::printf("%-12s %s\n", name.c_str(), verify::summarize(diags).c_str());
        for (const auto& diag : diags)
            std::printf("  %s\n", verify::to_string(diag).c_str());
        if (verify::has_errors(diags)) ++failed;
    }
    std::printf("checked %zu multiplier%s: %zu failed\n", results.size(),
                results.size() == 1 ? "" : "s", failed);
    return failed == 0 ? 0 : 1;
}

void usage() {
    std::fputs(
        "usage: amret_cli <command> [args]\n"
        "  list                         all multipliers\n"
        "  info    <name>               metrics + hardware\n"
        "  verilog <name> [--out f.v]   export netlist\n"
        "  lut     <name> --out f.bin   export product LUT\n"
        "  grad    <name> [--hws N] --out f.bin  export gradient tables\n"
        "  synth   --bits B --nmed P [--out f.v] approximate synthesis\n"
        "  profile <name>               structural error profile\n"
        "  check   [name...] [--hws N] [--skip-grad] [--skip-sim]\n"
        "                               static verification (exit 1 on errors)\n"
        "  analyze-static [--models a,b] [--mults a,b] [--out-dir results]\n"
        "          [--width-mult F]     prove the integer inference pipeline\n"
        "                               overflow-free per model x multiplier;\n"
        "                               writes certificate JSONs, exits 1 on\n"
        "                               any unprovable config\n"
        "  train   [--model lenet] [--mult name] [--epochs N] [--batch N]\n"
        "          [--microbatches K] [--checkpoint f.ckpt] [--resume]\n"
        "          [--trace out.json] [--profile]\n"
        "                               train on the synthetic task; the\n"
        "                               checkpoint enables mid-run resume;\n"
        "                               --trace writes a Perfetto-loadable\n"
        "                               span trace, --profile prints the\n"
        "                               hierarchical time table\n"
        "  serve   [--duration S] [--clients N] [--workers N] [--max-batch N]\n"
        "          [--deadline-us U] [--queue-depth N] [--queue-timeout-us U]\n"
        "          [--mults a,b,...] [--rate R] [--bursty] [--hot-fraction F]\n"
        "          [--train-epochs N] [--max-reject-rate F]\n"
        "                               smoke-run the batching inference\n"
        "                               server under closed-loop load; exits\n"
        "                               nonzero on a reject storm\n"
        "global flags:\n"
        "  --threads N                  worker threads (0 = auto; env AMRET_THREADS)\n",
        stderr);
}

} // namespace

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    if (args.positional().empty()) {
        usage();
        return 1;
    }
    const std::string command = args.positional()[0];
    const std::string name = args.positional().size() > 1 ? args.positional()[1] : "";
    const std::string out = args.get("out", "");
    // 0 keeps the runtime default (AMRET_THREADS env, else hardware threads).
    const long threads = args.get_int("threads", 0, "AMRET_THREADS");
    if (threads > 0) runtime::set_num_threads(static_cast<unsigned>(threads));

    if (command == "list") return cmd_list();
    if (command == "info") return cmd_info(name);
    if (command == "verilog") return cmd_verilog(name, out);
    if (command == "lut") return cmd_lut(name, out);
    if (command == "grad")
        return cmd_grad(name, static_cast<unsigned>(args.get_int("hws", 4)), out);
    if (command == "synth")
        return cmd_synth(static_cast<unsigned>(args.get_int("bits", 6)),
                         args.get_double("nmed", 0.4), out);
    if (command == "profile") return cmd_profile(name);
    if (command == "check") return cmd_check(args);
    if (command == "analyze-static") return cmd_analyze_static(args);
    if (command == "train") return cmd_train(args);
    if (command == "serve") return cmd_serve(args);
    usage();
    return 1;
}
