/// \file amret_cli.cpp
/// \brief Command-line interface to the multiplier side of the library.
///
/// Subcommands:
///   list                          all registered multipliers with metrics
///   info    <name>                error metrics + hardware + structure
///   verilog <name> [--out f.v]    export the gate-level netlist
///   lut     <name> --out f.bin    export the product LUT (AMLUT1 format)
///   grad    <name> --hws N --out f.bin   export difference-gradient tables
///   synth   --bits B --nmed P [--out f.v]  run approximate synthesis
///   profile <name>                structural error profile (zero rows, bias,
///                                 magnitude-conditioned error)
///   check   [name...]             static verification: netlist structure,
///                                 LUT/netlist equivalence, gradient-LUT
///                                 invariants; exits nonzero on any error
///
/// Examples:
///   amret_cli info mul7u_rm6
///   amret_cli synth --bits 6 --nmed 0.4 --out mult.v
///   amret_cli check mul8u_2NDH --hws 16
#include "amret.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>

using namespace amret;

namespace {

int cmd_list() {
    auto& reg = appmult::Registry::instance();
    util::TablePrinter table({"Name", "Bits", "ER/%", "NMED/%", "MaxED", "Area/um2",
                              "Power/uW", "Construction"});
    for (const auto& name : reg.names()) {
        const auto& info = reg.info(name);
        const auto& err = reg.error(name);
        const auto& hw = reg.hardware(name);
        table.add_row({name, std::to_string(info.bits),
                       util::TablePrinter::num(100.0 * err.error_rate, 1),
                       util::TablePrinter::num(100.0 * err.nmed, 2),
                       std::to_string(err.max_ed),
                       util::TablePrinter::num(hw.area_um2, 1),
                       util::TablePrinter::num(hw.power_uw, 2), info.family});
    }
    table.print();
    return 0;
}

int cmd_info(const std::string& name) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name)) {
        std::fprintf(stderr, "unknown multiplier: %s (try `amret_cli list`)\n",
                     name.c_str());
        return 1;
    }
    const auto& info = reg.info(name);
    const auto& err = reg.error(name);
    const auto& hw = reg.hardware(name);
    std::printf("%s — %s\n", name.c_str(), info.family.c_str());
    std::printf("  bits: %u   approximate: %s   default HWS: %u\n", info.bits,
                info.approximate ? "yes" : "no", info.default_hws);
    std::printf("  ER: %.2f%%   NMED: %.3f%%   MaxED: %lld\n",
                100.0 * err.error_rate, 100.0 * err.nmed,
                static_cast<long long>(err.max_ed));
    std::printf("  area: %.2f um^2   delay: %.1f ps   power: %.2f uW   gates: %zu\n",
                hw.area_um2, hw.delay_ps, hw.power_uw, hw.gates);
    return 0;
}

int cmd_verilog(const std::string& name, const std::string& out) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name)) {
        std::fprintf(stderr, "unknown multiplier: %s\n", name.c_str());
        return 1;
    }
    const std::string verilog = reg.circuit(name).to_verilog(name);
    if (out.empty()) {
        std::fputs(verilog.c_str(), stdout);
        return 0;
    }
    std::ofstream f(out);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    f << verilog;
    std::printf("wrote %s (%zu gates)\n", out.c_str(), reg.circuit(name).gate_count());
    return 0;
}

int cmd_lut(const std::string& name, const std::string& out) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name) || out.empty()) {
        std::fprintf(stderr, "usage: amret_cli lut <name> --out file.bin\n");
        return 1;
    }
    if (!reg.lut(name).save(out)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s (%u-bit product LUT)\n", out.c_str(), reg.lut(name).bits());
    return 0;
}

int cmd_grad(const std::string& name, unsigned hws, const std::string& out) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name) || out.empty()) {
        std::fprintf(stderr, "usage: amret_cli grad <name> --hws N --out file.bin\n");
        return 1;
    }
    const auto grad = core::build_difference_grad(reg.lut(name), hws);
    if (!grad.save(out)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s (difference gradient, HWS=%u)\n", out.c_str(), hws);
    return 0;
}

int cmd_synth(unsigned bits, double nmed_percent, const std::string& out) {
    als::AlsOptions options;
    options.nmed_budget = nmed_percent / 100.0;
    options.protected_patterns = als::multiplier_zero_patterns(bits);
    const auto exact = multgen::build_netlist(multgen::exact_spec(bits));
    std::printf("synthesizing %u-bit approximate multiplier, NMED budget %.3f%% ...\n",
                bits, nmed_percent);
    const auto result = als::synthesize(exact, options);
    std::printf("done: %d rewrites, area %.2f -> %.2f um^2, NMED %.3f%%, ER %.1f%%\n",
                result.moves, result.area_before_um2, result.area_after_um2,
                100.0 * result.metrics.nmed, 100.0 * result.metrics.error_rate);
    if (!out.empty()) {
        std::ofstream f(out);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out.c_str());
            return 1;
        }
        f << result.netlist.to_verilog("als_mult");
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}

int cmd_profile(const std::string& name) {
    auto& reg = appmult::Registry::instance();
    if (!reg.contains(name)) {
        std::fprintf(stderr, "unknown multiplier: %s\n", name.c_str());
        return 1;
    }
    const auto profile = appmult::profile_error(reg.lut(name));
    std::printf("%s\n", appmult::summarize(profile).c_str());
    std::printf("mean |error| by operand magnitude (low -> high):\n");
    for (std::size_t b = 0; b < profile.mean_abs_error_by_magnitude.size(); ++b) {
        std::printf("  bucket %zu: |err| = %8.2f  signed = %8.2f\n", b,
                    profile.mean_abs_error_by_magnitude[b],
                    profile.mean_signed_error_by_magnitude[b]);
    }
    return 0;
}

/// Trains a model on the synthetic task with optional mid-run resume.
/// `--checkpoint f.ckpt` writes a v2 TrainCheckpoint (weights + optimizer
/// slots + epoch cursor) after every epoch; `--resume` loads it back and
/// continues at the recorded epoch, so an interrupted run finishes with the
/// exact trajectory of an uninterrupted one.
int cmd_train(const util::ArgParser& args) {
    data::SyntheticConfig dc;
    dc.num_classes = 10;
    dc.height = dc.width = 16;
    dc.train_samples = args.get_int("train-samples", 512);
    dc.test_samples = args.get_int("test-samples", 128);
    dc.seed = static_cast<std::uint64_t>(args.get_int("data-seed", 5));
    const auto pair = data::make_synthetic(dc);

    models::ModelConfig mc;
    mc.in_size = 16;
    mc.width_mult = static_cast<float>(args.get_double("width-mult", 0.5));
    auto model = train::make_model(args.get("model", "lenet"), mc);

    const std::string mult = args.get("mult", "");
    if (!mult.empty()) {
        auto& reg = appmult::Registry::instance();
        if (!reg.contains(mult)) {
            std::fprintf(stderr, "unknown multiplier: %s\n", mult.c_str());
            return 1;
        }
        approx::MultiplierConfig config;
        config.lut = std::make_shared<appmult::AppMultLut>(reg.lut(mult));
        config.grad = std::make_shared<core::GradLut>(core::build_difference_grad(
            *config.lut, static_cast<unsigned>(args.get_int(
                             "hws", static_cast<long>(reg.info(mult).default_hws)))));
        approx::configure_approx_layers(*model, config,
                                        approx::ComputeMode::kQuantized);
    }

    train::TrainConfig tc;
    tc.epochs = static_cast<int>(args.get_int("epochs", 5));
    tc.batch_size = args.get_int("batch", 64);
    tc.microbatches = static_cast<int>(args.get_int("microbatches", 1));
    tc.lr = args.get_double("lr", 1e-3);
    tc.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    tc.verbose = true;

    train::Trainer trainer(*model, pair.train, pair.test, tc);
    const std::string ckpt = args.get("checkpoint", "");
    if (!ckpt.empty()) trainer.set_checkpoint_path(ckpt);
    if (args.get_bool("resume", false)) {
        if (ckpt.empty()) {
            std::fprintf(stderr, "--resume requires --checkpoint <file>\n");
            return 1;
        }
        if (trainer.resume_from(ckpt))
            std::printf("resumed from %s\n", ckpt.c_str());
        else
            std::printf("no usable checkpoint at %s, training from scratch\n",
                        ckpt.c_str());
    }

    // Tracing only reads clocks — it never alters chunking, RNG streams, or
    // arithmetic — so a traced run trains bitwise-identical weights.
    const std::string trace_path = args.get("trace", "");
    const bool profile = args.get_bool("profile", false);
    if (!trace_path.empty() || profile) obs::trace_start();

    const auto history = trainer.run();

    if (obs::trace_enabled()) {
        obs::trace_stop();
        if (profile) std::fputs(obs::profile_table().c_str(), stdout);
        if (!trace_path.empty()) {
            if (obs::write_chrome_trace(trace_path))
                std::printf("wrote %s (%zu spans; load in ui.perfetto.dev)\n",
                            trace_path.c_str(), obs::trace_events().size());
            else
                std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        }
    }
    if (profile) {
        const std::string counters = obs::counters_table();
        if (!counters.empty()) std::fputs(counters.c_str(), stdout);
    }

    if (history.test.empty()) return 0;
    std::printf("final: loss %.4f  top1 %.3f  top5 %.3f\n",
                history.test.back().loss, history.test.back().top1,
                history.test.back().top5);
    return 0;
}

int cmd_check(const util::ArgParser& args) {
    verify::CheckOptions options;
    const long hws = args.get_int("hws", -1);
    if (hws >= 0) options.hws = static_cast<unsigned>(hws);
    options.check_gradients = !args.get_bool("skip-grad", false);
    options.cross_check_netlist = !args.get_bool("skip-sim", false);

    // Positionals after the subcommand select multipliers; none = all.
    std::vector<std::string> names(args.positional().begin() + 1,
                                   args.positional().end());
    const auto results =
        verify::check_registry(appmult::Registry::instance(), names, options);

    std::size_t failed = 0;
    for (const auto& [name, diags] : results) {
        std::printf("%-12s %s\n", name.c_str(), verify::summarize(diags).c_str());
        for (const auto& diag : diags)
            std::printf("  %s\n", verify::to_string(diag).c_str());
        if (verify::has_errors(diags)) ++failed;
    }
    std::printf("checked %zu multiplier%s: %zu failed\n", results.size(),
                results.size() == 1 ? "" : "s", failed);
    return failed == 0 ? 0 : 1;
}

void usage() {
    std::fputs(
        "usage: amret_cli <command> [args]\n"
        "  list                         all multipliers\n"
        "  info    <name>               metrics + hardware\n"
        "  verilog <name> [--out f.v]   export netlist\n"
        "  lut     <name> --out f.bin   export product LUT\n"
        "  grad    <name> [--hws N] --out f.bin  export gradient tables\n"
        "  synth   --bits B --nmed P [--out f.v] approximate synthesis\n"
        "  profile <name>               structural error profile\n"
        "  check   [name...] [--hws N] [--skip-grad] [--skip-sim]\n"
        "                               static verification (exit 1 on errors)\n"
        "  train   [--model lenet] [--mult name] [--epochs N] [--batch N]\n"
        "          [--microbatches K] [--checkpoint f.ckpt] [--resume]\n"
        "          [--trace out.json] [--profile]\n"
        "                               train on the synthetic task; the\n"
        "                               checkpoint enables mid-run resume;\n"
        "                               --trace writes a Perfetto-loadable\n"
        "                               span trace, --profile prints the\n"
        "                               hierarchical time table\n"
        "global flags:\n"
        "  --threads N                  worker threads (0 = auto; env AMRET_THREADS)\n",
        stderr);
}

} // namespace

int main(int argc, char** argv) {
    const util::ArgParser args(argc, argv);
    if (args.positional().empty()) {
        usage();
        return 1;
    }
    const std::string command = args.positional()[0];
    const std::string name = args.positional().size() > 1 ? args.positional()[1] : "";
    const std::string out = args.get("out", "");
    // 0 keeps the runtime default (AMRET_THREADS env, else hardware threads).
    const long threads = args.get_int("threads", 0, "AMRET_THREADS");
    if (threads > 0) runtime::set_num_threads(static_cast<unsigned>(threads));

    if (command == "list") return cmd_list();
    if (command == "info") return cmd_info(name);
    if (command == "verilog") return cmd_verilog(name, out);
    if (command == "lut") return cmd_lut(name, out);
    if (command == "grad")
        return cmd_grad(name, static_cast<unsigned>(args.get_int("hws", 4)), out);
    if (command == "synth")
        return cmd_synth(static_cast<unsigned>(args.get_int("bits", 6)),
                         args.get_double("nmed", 0.4), out);
    if (command == "profile") return cmd_profile(name);
    if (command == "check") return cmd_check(args);
    if (command == "train") return cmd_train(args);
    usage();
    return 1;
}
